// Package combine is a detectable flat-combining front over any
// dss.Object: it amortizes the persist fences that dominate every
// committed figure by publishing prepped operations into per-client
// announcement slots and letting one client at a time — the combiner —
// execute a whole batch against the underlying object under a single
// SFENCE drain.
//
// Why fences, not flushes, are the target: pmem's cost model (like the
// hardware it calibrates against) charges a CLWB issue a quarter of the
// persist latency and the SFENCE drain the rest, and issues to distinct
// lines pipeline while drains serialize. The per-op persist chains of
// the concrete objects pay ~5 drains per operation; a combined batch of
// B operations pays one announcement drain per op plus two drains for
// the whole batch.
//
// # Slot layout
//
// Each client owns two consecutive cache lines, so clients never share a
// line with each other or with the combiner's metadata:
//
//	announce line: word 0 = seq<<8 | kind<<2 | requested | done
//	               word 1+(seq&1) = operation argument (parity-buffered:
//	               successive announcements alternate arg words, so the
//	               live announcement's argument is never overwritten by
//	               a prep in flight when a crash fixes the line's fate)
//	               word 3+(seq&1) = auxiliary tag (PrepTagged), parity-
//	               buffered for the same reason
//	result line:   word 0 = kind of the response
//	               word 1 = response value
//	               word 2 = seq of the operation the result answers
//
// seq is a per-client counter that survives withdrawal (Abandon keeps
// the seq bits and clears only the kind), so a result line is
// interpretable exactly when its seq matches the announce line's — a
// stale result from an earlier operation can never be mistaken for the
// current one, which is why Prep never needs to clear the result line.
// requested and done are volatile handshake bits that happen to live in
// heap words (all cross-thread coordination must go through heap
// primitives so the virtual-time scheduler sees it); recovery clears
// them, and no correctness argument ever reads them from the persisted
// image.
//
// # The detectable lifecycle
//
// Prep withdraws the client's previous record from the inner object and
// persists the new announcement, both under one fence batch: two CLWB
// issues, one drain — the PersistPair shape. The announcement is durable
// before Prep returns, so Resolve can always reconstruct the prepared
// operation from the slot (Axiom 1).
//
// Exec sets the requested bit and waits for the done bit; any waiting
// client that finds the combiner lock free becomes the combiner. The
// combiner scans the slots, and for every requested-but-undone operation
// preps and execs it on the inner object and writes + FlushLines the
// result line, all inside one fence batch; the closing drain makes every
// result in the batch durable at once, and only then are the done bits
// published. A client therefore never observes a response that is not
// yet durable (strict linearizability needs exactly this: a response
// externalized before its persist could be lost by a crash and resolve
// as never-executed).
//
// The combiner applies only *requested* slots, never merely announced
// ones: an announced-but-unrequested operation belongs to a client that
// has not called Exec, and may still be withdrawn by Abandon without
// racing the combiner.
//
// # Crash safety of the single drain
//
// A crash anywhere inside a combiner batch leaves each operation in one
// of three states, every one of them recoverable: (a) inner record
// pending, result stale — Resolve reports the operation unexecuted, a
// correct outcome for an Exec that never returned; (b) inner record
// executed, result stale — Recover (or the combiner's own reconcile
// pass, or Resolve's fallback) republishes the response from the inner
// object's persisted record, so the operation's effect is exactly-once;
// (c) result published — done. The reconcile in (b) is sound because of
// the package invariant that the inner object's record for client t, if
// any, always belongs to t's currently announced operation: Prep
// withdraws the previous inner record before announcing, and the
// combiner preps only announced operations. See DESIGN.md §13 for the
// full argument and for the simulator-vs-hardware ordering caveat.
package combine

import (
	"fmt"

	"repro/internal/dss"
	"repro/internal/obs"
	"repro/internal/pmem"
)

// Announce-line word layout. The argument is double-buffered by seq
// parity: Prep for seq writes word 1+(seq&1), so the word the *previous*
// announcement's argument lives in is never touched mid-prep. Without
// this, a crash between the arg store and the header store could survive
// with the old header paired with the new argument (dirty-line fates are
// per line, not per word) and resolve the old operation with a corrupted
// argument.
const (
	annHdr = 0 // seq<<seqShift | kind<<kindShift | bits
	annArg = 1 // + seq&1
	annTag = 3 // + seq&1
	annKey = 5 // + seq&1; keyed types only (parity-buffered like the arg)

	bitReq    = 1 << 0 // volatile: owner has called Exec
	bitDone   = 1 << 1 // volatile: result published and drained
	kindShift = 2
	kindMask  = 0xf // four kind bits: bits 6..7 stay free below seqShift
	seqShift  = 8
)

// Result-line word layout. resVal2 is written only for keyed types, so
// the one-word types' result publication stays step-identical.
const (
	resKind = 0
	resVal  = 1
	resSeq  = 2 // stored last: seq visible implies kind/val visible
	resVal2 = 3
)

// Meta line layout. The magic word packs the front's own magic in its
// low 32 bits and the inner type code above it, like sharded's.
const (
	cfgMagic = 0
	cfgThrd  = 1
	cfgSlot  = 2
	cfgLock  = 3

	magicCombine = 0x4453_5343 // "DSSC"
)

// codeBase offsets the wrapper's persisted type code away from the
// concrete types' codes: combined-X has code codeBase | X's code.
const codeBase = 1 << 8

// Front is the flat-combining detectable front over one inner object.
type Front struct {
	h        *pmem.Heap
	inner    dss.Object
	threads  int
	slotBase pmem.Addr
	lockAddr pmem.Addr
	obs      *obs.Sink
	// keyed mirrors the inner type's Keyed flag: announce lines carry
	// the operation's Key word and result lines a second response word.
	keyed bool
	// seqs[tid] is the volatile cache of tid's announce-line sequence
	// counter (single-owner; rebuilt from the slots after a crash).
	seqs []uint64
	// batch is the combiner's scratch list, reused under the lock.
	batch []int
}

var _ dss.Object = (*Front)(nil)

// TypeOver derives the combined dss.Type over inner: same sequential
// model and spec vocabulary, one extra root slot (the front's metadata,
// claimed at rootSlot, with the inner object at rootSlot+1).
func TypeOver(inner dss.Type) dss.Type {
	slots := inner.RootSlots
	if slots < 1 {
		slots = 1
	}
	var attach func(h *pmem.Heap, rootSlot int, cfg dss.Config) (dss.Object, error)
	if inner.Attach != nil {
		attach = func(h *pmem.Heap, rootSlot int, cfg dss.Config) (dss.Object, error) {
			return Attach(h, rootSlot, inner, cfg)
		}
	}
	return inner.Derive("combined-"+inner.Name, codeBase|inner.Code, 1+slots,
		func(h *pmem.Heap, rootSlot int, cfg dss.Config) (dss.Object, error) {
			return New(h, rootSlot, inner, cfg)
		}, attach)
}

// New builds a combining front over a fresh inner object of type typ. It
// claims rootSlot for its own metadata plus typ.RootSlots consecutive
// slots for the inner object, starting at rootSlot+1.
func New(h *pmem.Heap, rootSlot int, typ dss.Type, cfg dss.Config) (*Front, error) {
	if cfg.Threads < 1 {
		return nil, fmt.Errorf("combine: need at least 1 thread, got %d", cfg.Threads)
	}
	slots := typ.RootSlots
	if slots < 1 {
		slots = 1
	}
	if rootSlot < 0 || rootSlot+1+slots > pmem.NumRoots {
		return nil, fmt.Errorf("combine: combined %s at root slot %d exceeds the %d root slots",
			typ.Name, rootSlot, pmem.NumRoots)
	}
	meta, err := h.Alloc(pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("combine: meta: %w", err)
	}
	lock, err := h.Alloc(pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("combine: lock: %w", err)
	}
	slotBase, err := h.Alloc(cfg.Threads * 2 * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("combine: slots: %w", err)
	}
	inner, err := typ.New(h, rootSlot+1, cfg)
	if err != nil {
		return nil, fmt.Errorf("combine: inner %s: %w", typ.Name, err)
	}
	// Fresh allocations are zero, but persist the zeros so the first
	// crash cannot resurrect pre-heap garbage (mirrors sharded.New).
	h.PersistRange(slotBase, cfg.Threads*2*pmem.WordsPerLine)
	h.Store(meta+cfgThrd, uint64(cfg.Threads))
	h.Store(meta+cfgSlot, uint64(slotBase))
	h.Store(meta+cfgLock, uint64(lock))
	h.Store(meta+cfgMagic, magicCombine|typ.Code<<32)
	h.Persist(meta)
	h.SetRoot(rootSlot, meta)
	return &Front{
		h: h, inner: inner, threads: cfg.Threads,
		slotBase: slotBase, lockAddr: lock, keyed: typ.Keyed,
		seqs:  make([]uint64, cfg.Threads),
		batch: make([]int, 0, cfg.Threads),
	}, nil
}

// Attach reconstructs the handle of a front built by New in a previous
// process. The inner type must match (its persisted code is validated)
// and support re-attachment; the caller must run Recover on the result.
func Attach(h *pmem.Heap, rootSlot int, typ dss.Type, cfg dss.Config) (*Front, error) {
	if typ.Attach == nil {
		return nil, fmt.Errorf("combine: type %s does not support re-attachment", typ.Name)
	}
	meta := h.Root(rootSlot)
	if meta == 0 {
		return nil, fmt.Errorf("combine: root slot %d is empty", rootSlot)
	}
	magic := h.Load(meta + cfgMagic)
	if magic&(1<<32-1) != magicCombine {
		return nil, fmt.Errorf("combine: root slot %d does not hold a combining front", rootSlot)
	}
	if code := magic >> 32; code != typ.Code {
		return nil, fmt.Errorf("combine: root slot %d holds inner type code %d, not %s (%d)",
			rootSlot, code, typ.Name, typ.Code)
	}
	threads := int(h.Load(meta + cfgThrd))
	if threads < 1 || threads > 1<<16 {
		return nil, fmt.Errorf("combine: corrupt config (%d threads)", threads)
	}
	inner, err := typ.Attach(h, rootSlot+1, dss.Config{Threads: threads})
	if err != nil {
		return nil, fmt.Errorf("combine: inner %s: %w", typ.Name, err)
	}
	return &Front{
		h: h, inner: inner, threads: threads,
		slotBase: pmem.Addr(h.Load(meta + cfgSlot)),
		lockAddr: pmem.Addr(h.Load(meta + cfgLock)),
		keyed:    typ.Keyed,
		seqs:     make([]uint64, threads),
		batch:    make([]int, 0, threads),
	}, nil
}

// Inner returns the underlying object (test and tooling access).
func (f *Front) Inner() dss.Object { return f.inner }

// Threads reports the number of processes the front was built for.
func (f *Front) Threads() int { return f.threads }

// SetObs attaches an observability sink (nil to remove): combiner batch
// sizes (obs.PhaseBatch histogram), client combine-wait latency
// (obs.PhaseCombine) and the combines/combined-ops counters. Recording
// never touches the heap, so an unobserved run is step-for-step
// identical to an observed one. Not safe to call concurrently with
// operations.
func (f *Front) SetObs(s *obs.Sink) { f.obs = s }

func (f *Front) announceAddr(tid int) pmem.Addr {
	return f.slotBase + pmem.Addr(tid*2*pmem.WordsPerLine)
}

func (f *Front) resultAddr(tid int) pmem.Addr {
	return f.announceAddr(tid) + pmem.WordsPerLine
}

func hdrKind(hdr uint64) dss.Kind { return dss.Kind(hdr >> kindShift & kindMask) }

// readResp decodes tid's result line (valid only when its seq matches
// the announce line's).
func (f *Front) readResp(r pmem.Addr) dss.Resp {
	k := dss.RespKind(f.h.Load(r + resKind))
	if k == dss.Val {
		resp := dss.Resp{Kind: k, Val: f.h.Load(r + resVal)}
		if f.keyed {
			resp.Val2 = f.h.Load(r + resVal2)
		}
		return resp
	}
	return dss.Resp{Kind: k}
}

// Prep declares the detectable intent to perform op (Axiom 1): it
// withdraws tid's previous inner record and persists the new
// announcement under one fence batch — two flush issues, one drain.
//
// The withdrawal is what maintains the package invariant that an inner
// record always belongs to the current announcement: in this simulator
// Flush's write-back is synchronous, so the X-clear is durable before
// the announce flush even though both share the batch's single drain
// (real hardware would need the drain between them — see DESIGN.md §13).
func (f *Front) Prep(tid int, op dss.Op) error {
	return f.PrepTagged(tid, op, 0)
}

// PrepTagged is Prep with an auxiliary tag (Section 2.1's prep argument)
// persisted in the announcement line — same line, same single flush, so
// detectability across crashes gains a durable operation identity at
// zero extra persist cost. The tag is parity-buffered like the argument
// and is reported by ResolvedTag for the life of the announcement. This
// is what lets a retry discipline that keys on tags (mp.RetryClient)
// settle ambiguous outcomes across crashes when the server hosts a
// combined front; the concrete container objects do not persist tags,
// so a plain dss.Wire cannot offer this.
func (f *Front) PrepTagged(tid int, op dss.Op, tag uint64) error {
	if op.Kind == dss.None || uint64(op.Kind) > kindMask {
		return fmt.Errorf("combine: cannot prep %v", op.Kind)
	}
	h := f.h
	h.BeginFenceBatch()
	f.inner.Abandon(tid)
	seq := f.seqs[tid] + 1
	f.seqs[tid] = seq
	a := f.announceAddr(tid)
	h.Store(a+annArg+pmem.Addr(seq&1), op.Arg)
	h.Store(a+annTag+pmem.Addr(seq&1), tag)
	if f.keyed {
		// The key rides the same line and the same flush, parity-buffered
		// like the argument; unkeyed types skip the store and keep their
		// original step sequence.
		h.Store(a+annKey+pmem.Addr(seq&1), op.Key)
	}
	h.Store(a+annHdr, seq<<seqShift|uint64(op.Kind)<<kindShift)
	h.FlushLine(a)
	h.EndFenceBatch()
	return nil
}

// ResolvedTag reports the persisted tag of tid's current announcement
// (0 when no operation is announced). Write-free, like Resolve.
func (f *Front) ResolvedTag(tid int) uint64 {
	h := f.h
	a := f.announceAddr(tid)
	hdr := h.Load(a + annHdr)
	if hdrKind(hdr) == dss.None {
		return 0
	}
	return h.Load(a + annTag + pmem.Addr(hdr>>seqShift&1))
}

// announcedOp decodes the operation named by an announce-line header.
// Keyed types always persist both payload words, so both are read back;
// the container types read the argument only for Insert, as before.
func (f *Front) announcedOp(a pmem.Addr, hdr uint64) dss.Op {
	op := dss.Op{Kind: hdrKind(hdr)}
	if f.keyed {
		op.Arg = f.h.Load(a + annArg + pmem.Addr(hdr>>seqShift&1))
		op.Key = f.h.Load(a + annKey + pmem.Addr(hdr>>seqShift&1))
	} else if op.Kind == dss.Insert {
		op.Arg = f.h.Load(a + annArg + pmem.Addr(hdr>>seqShift&1))
	}
	return op
}

// Exec applies the operation prepared by tid's last Prep (Axiom 2): it
// publishes the request bit and waits for the done bit, becoming the
// combiner itself whenever the combiner lock is free. Idempotent: a
// second call for one Prep returns the published result without
// re-requesting.
func (f *Front) Exec(tid int) (dss.Resp, error) {
	h := f.h
	a := f.announceAddr(tid)
	hdr := h.Load(a + annHdr)
	if hdrKind(hdr) == dss.None {
		return dss.Resp{}, nil
	}
	r := f.resultAddr(tid)
	if h.Load(r+resSeq) == hdr>>seqShift {
		return f.readResp(r), nil
	}
	h.Store(a+annHdr, hdr|bitReq)
	start := f.obs.Now()
	for h.Load(a+annHdr)&bitDone == 0 {
		// The spin goes through heap primitives (never Go-level waiting)
		// so the virtual-time scheduler charges it and interleaves it
		// deterministically.
		if h.CompareAndSwap(f.lockAddr, 0, uint64(tid)+1) {
			f.combine()
			h.Store(f.lockAddr, 0)
		}
	}
	f.obs.ObserveSince(obs.PhaseCombine, obsKind(hdrKind(hdr)), start)
	return f.readResp(r), nil
}

// obsKind translates the runtime vocabulary into the sink's.
func obsKind(k dss.Kind) obs.OpKind {
	switch k {
	case dss.Insert:
		return obs.KindInsert
	case dss.Remove:
		return obs.KindRemove
	case dss.Read:
		return obs.KindRead
	case dss.Write:
		return obs.KindWrite
	case dss.Swap:
		return obs.KindSwap
	case dss.CAS, dss.MapCAS:
		return obs.KindCAS
	case dss.Put:
		return obs.KindPut
	case dss.Get:
		return obs.KindGet
	case dss.Delete:
		return obs.KindDelete
	default:
		return obs.KindNone
	}
}

// combine is one combiner pass, run under the combiner lock: scan for
// requested-but-undone slots, execute each against the inner object and
// publish its result line, all inside one fence batch, then — only
// after the closing drain — flip the done bits.
func (f *Front) combine() {
	h := f.h
	batch := f.batch[:0]
	for t := 0; t < f.threads; t++ {
		hdr := h.Load(f.announceAddr(t) + annHdr)
		if hdr&bitReq == 0 || hdr&bitDone != 0 {
			continue
		}
		if h.Load(f.resultAddr(t)+resSeq) == hdr>>seqShift {
			// Already published (a recovery reconciled it); the owner
			// only needs the done bit, no drain required.
			h.Store(f.announceAddr(t)+annHdr, hdr|bitDone)
			continue
		}
		batch = append(batch, t)
	}
	if len(batch) == 0 {
		return
	}
	h.BeginFenceBatch()
	for _, t := range batch {
		a := f.announceAddr(t)
		hdr := h.Load(a + annHdr)
		op := f.announcedOp(a, hdr)
		var resp dss.Resp
		if _, prior, ok := f.inner.Resolve(t); ok && prior.Kind != dss.NoResp {
			// The inner record — by invariant, this announcement's — was
			// executed by a pass interrupted before publication. Its
			// effect is durable; republish instead of re-executing.
			resp = prior
		} else {
			if err := f.inner.Prep(t, op); err != nil {
				// Inner preps fail only on exhausted pools: a sizing bug,
				// not a runtime condition (the owner is parked in Exec and
				// cannot be handed an error).
				panic(fmt.Sprintf("combine: inner prep for thread %d: %v", t, err))
			}
			var err error
			if resp, err = f.inner.Exec(t); err != nil {
				panic(fmt.Sprintf("combine: inner exec for thread %d: %v", t, err))
			}
		}
		r := f.resultAddr(t)
		h.Store(r+resKind, uint64(resp.Kind))
		h.Store(r+resVal, resp.Val)
		if f.keyed {
			h.Store(r+resVal2, resp.Val2)
		}
		h.Store(r+resSeq, hdr>>seqShift)
		h.FlushLine(r)
	}
	h.EndFenceBatch()
	for _, t := range batch {
		a := f.announceAddr(t)
		h.Store(a+annHdr, h.Load(a+annHdr)|bitDone)
	}
	f.obs.Add(obs.CtrCombines, 1)
	f.obs.Add(obs.CtrCombinedOps, uint64(len(batch)))
	f.obs.Observe(obs.PhaseBatch, obs.KindNone, uint64(len(batch)))
}

// Resolve reports tid's most recently prepared operation and its
// response (Axiom 3). Total, idempotent, and write-free: an executed
// result is read from the published result line, or — when a crash or
// volatile reset interrupted a pass between the inner execution and the
// publication — from the inner object's own persisted record.
func (f *Front) Resolve(tid int) (dss.Op, dss.Resp, bool) {
	h := f.h
	a := f.announceAddr(tid)
	hdr := h.Load(a + annHdr)
	k := hdrKind(hdr)
	if k == dss.None {
		return dss.Op{}, dss.Resp{}, false
	}
	op := f.announcedOp(a, hdr)
	r := f.resultAddr(tid)
	if h.Load(r+resSeq) == hdr>>seqShift {
		return op, f.readResp(r), true
	}
	if _, prior, ok := f.inner.Resolve(tid); ok && prior.Kind != dss.NoResp {
		return op, prior, true
	}
	return op, dss.Resp{}, true
}

// Invoke applies op non-detectably (Axiom 4), bypassing the combiner:
// a base operation has no announcement to batch and the inner object is
// already safe for concurrent use.
func (f *Front) Invoke(tid int, op dss.Op) (dss.Resp, error) {
	return f.inner.Invoke(tid, op)
}

// Abandon withdraws tid's prepared-but-unexecuted operation: the inner
// record (if a reconcile left one) and the announcement's kind bits are
// cleared under one fence batch. The seq bits survive withdrawal, so
// stale result lines stay unambiguous across it. An announced-but-
// unrequested operation is invisible to combiners (they apply only
// requested slots), so no pass concurrent with the owner can apply an
// operation the owner is here to withdraw.
func (f *Front) Abandon(tid int) {
	h := f.h
	a := f.announceAddr(tid)
	hdr := h.Load(a + annHdr)
	if hdrKind(hdr) == dss.None {
		return
	}
	h.BeginFenceBatch()
	f.inner.Abandon(tid)
	h.Store(a+annHdr, hdr>>seqShift<<seqShift)
	h.FlushLine(a)
	h.EndFenceBatch()
}

// Recover is the centralized post-crash procedure: recover the inner
// object, release the combiner lock, clear the volatile handshake bits,
// and reconcile every announced operation whose result was never
// published — if the inner object's record says it executed, the
// response is republished from that record (one drain for all of them);
// otherwise it stays pending. Single-threaded and idempotent: a second
// run finds the results already published and changes nothing.
func (f *Front) Recover() {
	f.inner.Recover()
	f.reconcile(true)
}

// ResetVolatile rebuilds the volatile companions — the combiner lock,
// the handshake bits, the seq cache — without modifying persistent
// state. Unpublished-but-executed operations are NOT republished here
// (that writes the heap); Resolve's inner fallback reports them
// correctly until the next Prep or Recover retires them.
func (f *Front) ResetVolatile() {
	f.inner.ResetVolatile()
	f.reconcile(false)
}

// reconcile is the shared recovery walk. The handshake-bit clears and
// the lock release are volatile stores (never flushed on purpose); only
// the republished result lines are persisted, under one closing drain.
func (f *Front) reconcile(publish bool) {
	h := f.h
	h.Store(f.lockAddr, 0)
	if publish {
		h.BeginFenceBatch()
	}
	for t := 0; t < f.threads; t++ {
		a := f.announceAddr(t)
		hdr := h.Load(a + annHdr)
		if hdr&(bitReq|bitDone) != 0 {
			hdr &^= bitReq | bitDone
			h.Store(a+annHdr, hdr)
		}
		f.seqs[t] = hdr >> seqShift
		if !publish || hdrKind(hdr) == dss.None {
			continue
		}
		r := f.resultAddr(t)
		if h.Load(r+resSeq) == hdr>>seqShift {
			continue
		}
		if _, prior, ok := f.inner.Resolve(t); ok && prior.Kind != dss.NoResp {
			h.Store(r+resKind, uint64(prior.Kind))
			h.Store(r+resVal, prior.Val)
			if f.keyed {
				h.Store(r+resVal2, prior.Val2)
			}
			h.Store(r+resSeq, hdr>>seqShift)
			h.FlushLine(r)
		}
	}
	if publish {
		h.EndFenceBatch()
	}
}
