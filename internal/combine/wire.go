package combine

import (
	"fmt"

	"repro/internal/dss"
	"repro/internal/spec"
)

// Wire adapts a Front to the spec-vocabulary service surface the
// message-passing engine (internal/mp) hosts, like dss.Wire — but with
// one crucial upgrade: the operation tag is persisted in the
// announcement slot (PrepTagged), so a resolve reports it across
// crashes. dss.Wire keeps tags in volatile memory and documents that
// tag-keyed retry clients (mp.RetryClient) therefore need the universal
// construction; a combined front is the second object family that can
// serve them, and it does so at a fraction of the universal log's
// persist cost.
type Wire struct {
	typ dss.Type
	f   *Front
}

// NewWire binds f (whose inner object is of type typ) to the wire
// vocabulary of typ.
func NewWire(typ dss.Type, f *Front) *Wire {
	return &Wire{typ: typ, f: f}
}

// Front returns the adapted combining front.
func (w *Wire) Front() *Front { return w.f }

// Prep declares a detectable operation (Axiom 1), persisting op.Tag with
// the announcement.
func (w *Wire) Prep(tid int, op spec.Op) error {
	dop, ok := w.typ.FromSpec(op)
	if !ok {
		return fmt.Errorf("combine: %s is not a %s operation", op, w.typ.Name)
	}
	return w.f.PrepTagged(tid, dop, op.Tag)
}

// Exec applies tid's prepared operation (Axiom 2).
func (w *Wire) Exec(tid int) (spec.Resp, error) {
	resp, err := w.f.Exec(tid)
	if err != nil {
		return spec.Resp{}, err
	}
	return dss.SpecResp(resp), nil
}

// Resolve reports (A[p], R[p]) (Axiom 3), with the tag read back from
// the persisted announcement — valid in any generation.
func (w *Wire) Resolve(tid int) spec.Resp {
	op, resp, ok := w.f.Resolve(tid)
	if !ok {
		return spec.PairResp(false, spec.Op{}, spec.BottomResp())
	}
	sop := w.typ.SpecOp(op)
	sop.Tag = w.f.ResolvedTag(tid)
	return spec.PairResp(true, sop, dss.SpecResp(resp))
}

// Invoke applies op non-detectably (Axiom 4).
func (w *Wire) Invoke(tid int, op spec.Op) (spec.Resp, error) {
	dop, ok := w.typ.FromSpec(op)
	if !ok {
		return spec.Resp{}, fmt.Errorf("combine: %s is not a %s operation", op, w.typ.Name)
	}
	resp, err := w.f.Invoke(tid, dop)
	if err != nil {
		return spec.Resp{}, err
	}
	return dss.SpecResp(resp), nil
}

// Recover runs the front's centralized recovery procedure.
func (w *Wire) Recover() { w.f.Recover() }
