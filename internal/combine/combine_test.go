package combine

import (
	"testing"

	"repro/internal/dss"
	"repro/internal/pmem"
)

func buildFront(t *testing.T, threads int) (*Front, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(h, 0, dss.QueueType, dss.Config{
		Threads: threads, NodesPerThread: 32, ExtraNodes: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, h
}

func exec(t *testing.T, f *Front, tid int, op dss.Op) dss.Resp {
	t.Helper()
	if err := f.Prep(tid, op); err != nil {
		t.Fatal(err)
	}
	resp, err := f.Exec(tid)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestCombinedQueueFIFO drives the combined queue single-threaded (the
// client self-combines) and checks FIFO order plus resolve-after-exec.
func TestCombinedQueueFIFO(t *testing.T) {
	f, _ := buildFront(t, 1)
	for i := uint64(1); i <= 5; i++ {
		if r := exec(t, f, 0, dss.Op{Kind: dss.Insert, Arg: 100 + i}); r.Kind != dss.Ack {
			t.Fatalf("insert %d: %+v", i, r)
		}
	}
	op, resp, ok := f.Resolve(0)
	if !ok || op.Kind != dss.Insert || op.Arg != 105 || resp.Kind != dss.Ack {
		t.Fatalf("resolve after insert: %+v %+v %v", op, resp, ok)
	}
	for i := uint64(1); i <= 5; i++ {
		r := exec(t, f, 0, dss.Op{Kind: dss.Remove})
		if r.Kind != dss.Val || r.Val != 100+i {
			t.Fatalf("remove %d: %+v", i, r)
		}
	}
	if r := exec(t, f, 0, dss.Op{Kind: dss.Remove}); r.Kind != dss.Empty {
		t.Fatalf("drained queue: %+v", r)
	}
}

// TestExecIdempotent asserts a second Exec for one Prep replays the
// published result without re-executing.
func TestExecIdempotent(t *testing.T) {
	f, _ := buildFront(t, 1)
	exec(t, f, 0, dss.Op{Kind: dss.Insert, Arg: 7})
	if err := f.Prep(0, dss.Op{Kind: dss.Remove}); err != nil {
		t.Fatal(err)
	}
	r1, _ := f.Exec(0)
	r2, _ := f.Exec(0)
	if r1 != r2 || r1.Kind != dss.Val || r1.Val != 7 {
		t.Fatalf("re-exec diverged: %+v vs %+v", r1, r2)
	}
	if op, resp, ok := f.Resolve(0); !ok || op.Kind != dss.Remove || resp != r1 {
		t.Fatalf("resolve: %+v %+v %v", op, resp, ok)
	}
	// The queue must be empty: the second Exec took nothing.
	if r := exec(t, f, 0, dss.Op{Kind: dss.Remove}); r.Kind != dss.Empty {
		t.Fatalf("second exec dequeued again: %+v", r)
	}
}

// TestFenceAmortization pins the front's fence economics single-threaded:
// each op pays one prep drain and one batch drain — two real fences —
// while the inner object's own fences are all elided.
func TestFenceAmortization(t *testing.T) {
	f, h := buildFront(t, 1)
	const warm = 2 // first ops allocate fresh pool nodes; let reuse settle
	for i := 0; i < warm; i++ {
		exec(t, f, 0, dss.Op{Kind: dss.Insert, Arg: uint64(i)})
		exec(t, f, 0, dss.Op{Kind: dss.Remove})
	}
	before := h.Stats()
	const pairs = 10
	for i := 0; i < pairs; i++ {
		exec(t, f, 0, dss.Op{Kind: dss.Insert, Arg: uint64(50 + i)})
		exec(t, f, 0, dss.Op{Kind: dss.Remove})
	}
	d := h.Stats().Sub(before)
	if want := uint64(2 * 2 * pairs); d.Fences != want {
		t.Fatalf("%d real fences for %d ops; want %d (2/op)", d.Fences, 2*pairs, want)
	}
	if d.FencesElided == 0 {
		t.Fatalf("no elided fences recorded (inner persists were not batched)")
	}
}

// TestAbandonedNeverApplied is the withdrawal sweep of the satellite
// task: an announced-but-unrequested operation is withdrawn, and no
// later combiner pass may apply it — the withdrawn value must never
// surface, and the withdrawn slot must resolve to no operation.
func TestAbandonedNeverApplied(t *testing.T) {
	f, _ := buildFront(t, 2)
	// Thread 0 announces insert(999) but never calls Exec.
	if err := f.Prep(0, dss.Op{Kind: dss.Insert, Arg: 999}); err != nil {
		t.Fatal(err)
	}
	// Thread 1 runs ops, each Exec a combiner pass over all slots.
	exec(t, f, 1, dss.Op{Kind: dss.Insert, Arg: 1})
	exec(t, f, 1, dss.Op{Kind: dss.Insert, Arg: 2})
	if op, _, ok := f.Resolve(0); !ok || op.Arg != 999 {
		t.Fatalf("announced op lost before withdrawal: %+v %v", op, ok)
	}
	f.Abandon(0)
	if _, _, ok := f.Resolve(0); ok {
		t.Fatal("withdrawn op still resolves")
	}
	// More combiner passes after the withdrawal.
	exec(t, f, 1, dss.Op{Kind: dss.Insert, Arg: 3})
	exec(t, f, 1, dss.Op{Kind: dss.Remove})
	// Drain: the withdrawn 999 must not be in the queue.
	for {
		r := exec(t, f, 1, dss.Op{Kind: dss.Remove})
		if r.Kind == dss.Empty {
			break
		}
		if r.Val == 999 {
			t.Fatal("withdrawn operation was applied by a later combiner pass")
		}
	}
	if _, _, ok := f.Resolve(0); ok {
		t.Fatal("withdrawn op resurfaced after later passes")
	}
}

// TestDoubleRecoverIdempotent crashes at every step of a combined
// workload (under both extreme adversaries), recovers, snapshots the
// persisted image and every resolution, runs Recover again, and asserts
// the second run changed nothing — the satellite task's idempotence
// proof, covering crashes during recovery itself.
func TestDoubleRecoverIdempotent(t *testing.T) {
	for _, adv := range []pmem.Adversary{pmem.DropAll{}, pmem.KeepAll{}} {
		for step := uint64(1); ; step++ {
			f, h := buildFront(t, 2)
			h.ArmCrash(step)
			crashed := pmem.RunToCrash(func() {
				for i := 0; i < 2; i++ {
					exec(t, f, 0, dss.Op{Kind: dss.Insert, Arg: uint64(10 + i)})
					exec(t, f, 0, dss.Op{Kind: dss.Remove})
				}
			})
			if !crashed {
				break
			}
			h.Crash(adv)
			f.Recover()
			type res struct {
				op   dss.Op
				resp dss.Resp
				ok   bool
			}
			snap := func() ([]res, []uint64) {
				rs := make([]res, 2)
				for tid := range rs {
					rs[tid].op, rs[tid].resp, rs[tid].ok = f.Resolve(tid)
				}
				img := make([]uint64, h.Words())
				for a := range img {
					img[a] = h.PersistedLoad(pmem.Addr(a))
				}
				return rs, img
			}
			r1, img1 := snap()
			f.Recover()
			r2, img2 := snap()
			for tid := range r1 {
				if r1[tid] != r2[tid] {
					t.Fatalf("step %d %T: second Recover changed tid %d resolution: %+v -> %+v",
						step, adv, tid, r1[tid], r2[tid])
				}
			}
			for a := range img1 {
				if img1[a] != img2[a] {
					t.Fatalf("step %d %T: second Recover changed persisted word %#x: %#x -> %#x",
						step, adv, a, img1[a], img2[a])
				}
			}
		}
	}
}

// TestRecoverPublishesExecutedOps pins recovery state (b) of the package
// doc: when a crash lands between the inner execution and the result
// publication, Recover republishes the response from the inner record,
// and the effect stays exactly-once.
func TestRecoverPublishesExecutedOps(t *testing.T) {
	published := 0
	for step := uint64(1); ; step++ {
		f, h := buildFront(t, 1)
		h.ArmCrash(step)
		crashed := pmem.RunToCrash(func() {
			exec(t, f, 0, dss.Op{Kind: dss.Insert, Arg: 42})
			f.Prep(0, dss.Op{Kind: dss.Remove})
			f.Exec(0)
		})
		if !crashed {
			break
		}
		h.Crash(pmem.DropAll{})
		f.Recover()
		op, resp, ok := f.Resolve(0)
		if ok && op.Kind == dss.Remove && resp.Kind == dss.Val {
			if resp.Val != 42 {
				t.Fatalf("step %d: recovered remove claims %d, want 42", step, resp.Val)
			}
			published++
			// Exactly-once: the value must be gone from the queue.
			if r, _ := f.Invoke(0, dss.Op{Kind: dss.Remove}); r.Kind != dss.Empty {
				t.Fatalf("step %d: value claimed twice: %+v", step, r)
			}
		}
	}
	if published == 0 {
		t.Fatal("no crash point exercised the executed-but-unpublished window")
	}
}

// TestTypeOverMetadata asserts the derived type's wiring: distinct code,
// extra root slot, working attach path.
func TestTypeOverMetadata(t *testing.T) {
	typ := TypeOver(dss.QueueType)
	if typ.Name != "combined-queue" || typ.Code != codeBase|dss.QueueType.Code {
		t.Fatalf("derived identity: %q code %d", typ.Name, typ.Code)
	}
	if typ.RootSlots != 1+dss.QueueType.RootSlots {
		t.Fatalf("root slots: %d", typ.RootSlots)
	}
	h, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := typ.New(h, 0, dss.Config{Threads: 1, NodesPerThread: 32, ExtraNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	f := obj.(*Front)
	if err := f.Prep(0, dss.Op{Kind: dss.Insert, Arg: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exec(0); err != nil {
		t.Fatal(err)
	}
	att, err := typ.Attach(h, 0, dss.Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	att.Recover()
	if op, resp, ok := att.Resolve(0); !ok || op.Arg != 5 || resp.Kind != dss.Ack {
		t.Fatalf("re-attached resolve: %+v %+v %v", op, resp, ok)
	}
	if r, _ := att.Invoke(0, dss.Op{Kind: dss.Remove}); r.Kind != dss.Val || r.Val != 5 {
		t.Fatalf("re-attached drain: %+v", r)
	}
}
