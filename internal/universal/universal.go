// Package universal implements a recoverable, detectable universal
// construction in the spirit of Herlihy's classic construction, which the
// paper points to in Section 2.2: "a wait-free recoverable implementation
// of D⟨T⟩ for any conventional type T can be obtained in the shared memory
// model using Herlihy's universal construction", extended here to the
// volatile-cache model with explicit persistence instructions.
//
// The object is a persistent append-only log of operation records.
// Appending is a lock-free tail CAS (as in the MS queue); the abstract
// state and every response are recovered by deterministic replay of the
// log against the sequential specification. Detectability follows the DSS
// queue's pattern: prep-op persists a record and points the caller's
// X[i] word at it; exec-op links the record into the log and then tags
// X[i] as complete; resolve decodes X[i], and recovery re-derives the
// completion tag for records that were linked but not yet tagged when the
// crash hit.
//
// Replay makes operations O(history), so this is a feasibility
// construction — exactly the role it plays in the paper — not a
// performance substrate.
package universal

import (
	"errors"
	"fmt"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// Record layout (one cache line).
const (
	recCode  = 0 // 1-based index into the op table
	recArg   = 1
	recArg2  = 2
	recTag   = 3
	recProc  = 4
	recNext  = 5
	recWords = pmem.WordsPerLine
)

// X-word tags (records are line-aligned, low bits of their address are
// free only above bit 56 for the arena sizes we use, so tags go high).
const (
	prepTag   = uint64(1) << 63
	complTag  = uint64(1) << 62
	xTagMask  = prepTag | complTag
	recNoNext = uint64(0)
)

// ErrNoRecords is returned when the record pool is exhausted (the log is
// append-only, so capacity bounds the total operation count).
var ErrNoRecords = errors.New("universal: record pool exhausted")

// ErrUnknownOp is returned for operations not in the object's op table.
var ErrUnknownOp = errors.New("universal: operation not in table")

// Object is a detectable recoverable object of an arbitrary sequential
// type, built from read/write/CAS base objects on the simulated heap.
type Object struct {
	h       *pmem.Heap
	pool    *pmem.Pool
	init    spec.State
	ops     []spec.Op // op table: prototypes indexed by code-1
	head    pmem.Addr // sentinel record
	tailA   pmem.Addr // volatile-ish tail hint (not trusted after crash)
	xBase   pmem.Addr
	threads int
}

// New builds a detectable object with the given initial state. opTable
// lists the object's operations by prototype symbol (e.g. spec.Read(),
// spec.Write(0), spec.CAS(0,0)); invocation arguments are carried in the
// record, so prototypes only fix the symbol. capacity bounds the total
// number of operations over the object's lifetime. Pass a negative
// rootSlot to skip root-directory registration (for objects that are
// themselves located through an owning structure, e.g. nested base
// objects).
func New(h *pmem.Heap, rootSlot, threads, capacity int, init spec.State, opTable []spec.Op) (*Object, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("universal: need at least one thread, got %d", threads)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("universal: capacity must be positive")
	}
	if len(opTable) == 0 {
		return nil, fmt.Errorf("universal: empty op table")
	}
	meta, err := h.Alloc((2 + threads) * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("universal: metadata: %w", err)
	}
	o := &Object{
		h:       h,
		init:    init,
		ops:     append([]spec.Op(nil), opTable...),
		head:    0,
		tailA:   meta,
		xBase:   meta + 2*pmem.WordsPerLine,
		threads: threads,
	}
	o.pool, err = pmem.NewPool(h, pmem.PoolConfig{
		Threads:         threads,
		BlocksPerThread: capacity/threads + 1,
		ExtraBlocks:     1,
		BlockWords:      recWords,
	})
	if err != nil {
		return nil, fmt.Errorf("universal: record pool: %w", err)
	}
	sentinel, ok := o.pool.Alloc(0)
	if !ok {
		return nil, fmt.Errorf("universal: no record for sentinel")
	}
	o.h.Store(sentinel+recNext, recNoNext)
	o.h.Persist(sentinel)
	o.head = sentinel
	o.h.Store(o.tailA, uint64(sentinel))
	o.h.Persist(o.tailA)
	for i := 0; i < threads; i++ {
		o.h.Store(o.xAddr(i), 0)
		o.h.Persist(o.xAddr(i))
	}
	if rootSlot >= 0 {
		h.SetRoot(rootSlot, meta)
	}
	return o, nil
}

func (o *Object) xAddr(tid int) pmem.Addr {
	return o.xBase + pmem.Addr(tid*pmem.WordsPerLine)
}

// encode returns the 1-based op-table code for op's symbol.
func (o *Object) encode(op spec.Op) (uint64, error) {
	for i, p := range o.ops {
		if p.Sym == op.Sym {
			return uint64(i + 1), nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownOp, op.Sym)
}

// decode rebuilds the op stored in record r.
func (o *Object) decode(r pmem.Addr) spec.Op {
	code := o.h.Load(r + recCode)
	if code == 0 || int(code) > len(o.ops) {
		return spec.Op{}
	}
	op := o.ops[code-1]
	op.Kind = spec.Base
	op.Arg = o.h.Load(r + recArg)
	op.Arg2 = o.h.Load(r + recArg2)
	op.Tag = o.h.Load(r + recTag)
	return op
}

// newRecord allocates and persists a record for op by proc.
func (o *Object) newRecord(tid int, op spec.Op) (pmem.Addr, error) {
	code, err := o.encode(op)
	if err != nil {
		return 0, err
	}
	r, ok := o.pool.Alloc(tid)
	if !ok {
		return 0, ErrNoRecords
	}
	o.h.Store(r+recCode, code)
	o.h.Store(r+recArg, op.Arg)
	o.h.Store(r+recArg2, op.Arg2)
	o.h.Store(r+recTag, op.Tag)
	o.h.Store(r+recProc, uint64(tid))
	o.h.Store(r+recNext, recNoNext)
	o.h.Persist(r)
	return r, nil
}

// append links record r at the end of the log (lock-free) and persists
// the link.
func (o *Object) append(r pmem.Addr) {
	for {
		last := pmem.Addr(o.h.Load(o.tailA))
		next := pmem.Addr(o.h.Load(last + recNext))
		if next != 0 {
			o.h.Persist(last + recNext)
			o.h.CompareAndSwap(o.tailA, uint64(last), uint64(next))
			continue
		}
		if o.h.CompareAndSwap(last+recNext, recNoNext, uint64(r)) {
			o.h.Persist(last + recNext)
			o.h.CompareAndSwap(o.tailA, uint64(last), uint64(r))
			return
		}
	}
}

// replay folds the log through the specification, returning the state
// after all records and the response of record upto (if nonzero).
func (o *Object) replay(upto pmem.Addr) (spec.State, spec.Resp, bool) {
	st := o.init
	var resp spec.Resp
	found := false
	for r := pmem.Addr(o.h.Load(o.head + recNext)); r != 0; r = pmem.Addr(o.h.Load(r + recNext)) {
		op := o.decode(r)
		proc := int(o.h.Load(r + recProc))
		next, rresp, ok := st.Apply(op, proc)
		if !ok {
			// A record for an op the spec rejects cannot be appended by
			// this implementation; tolerate it as a no-op for robustness.
			continue
		}
		st = next
		if r == upto {
			resp = rresp
			found = true
		}
	}
	return st, resp, found
}

// State returns the object's current abstract state (by replay).
func (o *Object) State() spec.State {
	st, _, _ := o.replay(0)
	return st
}

// Invoke applies op non-detectably (Axiom 4) and returns its response.
func (o *Object) Invoke(tid int, op spec.Op) (spec.Resp, error) {
	r, err := o.newRecord(tid, op)
	if err != nil {
		return spec.Resp{}, err
	}
	o.append(r)
	_, resp, _ := o.replay(r)
	return resp, nil
}

// Prep declares the detectable intent to apply op (Axiom 1).
func (o *Object) Prep(tid int, op spec.Op) error {
	r, err := o.newRecord(tid, op)
	if err != nil {
		return err
	}
	oldX := o.h.Load(o.xAddr(tid))
	o.h.Store(o.xAddr(tid), uint64(r)|prepTag)
	o.h.Persist(o.xAddr(tid))
	if oldX&prepTag != 0 && oldX&complTag == 0 {
		if old := pmem.Addr(oldX &^ xTagMask); old != 0 && !o.linked(old) {
			// A previously prepared record that never made it into the
			// log can be reused.
			o.pool.Free(tid, old)
		}
	}
	return nil
}

// Exec applies the prepared operation (Axiom 2) and returns its response.
// A second Exec for the same Prep is a no-op returning the recorded
// response, mirroring the DSS queue's defensive behavior.
func (o *Object) Exec(tid int) (spec.Resp, error) {
	x := o.h.Load(o.xAddr(tid))
	if x&prepTag == 0 {
		return spec.Resp{}, fmt.Errorf("universal: exec without prep")
	}
	r := pmem.Addr(x &^ xTagMask)
	if x&complTag == 0 {
		o.append(r)
		o.h.Store(o.xAddr(tid), x|complTag)
		o.h.Persist(o.xAddr(tid))
	}
	_, resp, _ := o.replay(r)
	return resp, nil
}

// Resolve reports the most recently prepared operation and its response
// (Axiom 3). It is total and idempotent.
func (o *Object) Resolve(tid int) spec.Resp {
	x := o.h.Load(o.xAddr(tid))
	if x&prepTag == 0 {
		return spec.PairResp(false, spec.Op{}, spec.BottomResp())
	}
	r := pmem.Addr(x &^ xTagMask)
	op := o.decode(r)
	if x&complTag == 0 && !o.linked(r) {
		return spec.PairResp(true, op, spec.BottomResp())
	}
	_, resp, found := o.replay(r)
	if !found {
		return spec.PairResp(true, op, spec.BottomResp())
	}
	return spec.PairResp(true, op, resp)
}

// linked reports whether record r is in the log.
func (o *Object) linked(r pmem.Addr) bool {
	for c := pmem.Addr(o.h.Load(o.head + recNext)); c != 0; c = pmem.Addr(o.h.Load(c + recNext)) {
		if c == r {
			return true
		}
	}
	return false
}

// Recover restores the object after a crash: it re-derives the tail hint,
// completes the X tag of any record that was linked but not yet tagged,
// and rebuilds the volatile pool state. Single-threaded.
func (o *Object) Recover() {
	last := o.head
	live := map[pmem.Addr]bool{o.head: true}
	for r := pmem.Addr(o.h.Load(o.head + recNext)); r != 0; r = pmem.Addr(o.h.Load(r + recNext)) {
		live[r] = true
		last = r
	}
	o.h.Store(o.tailA, uint64(last))
	o.h.Persist(o.tailA)
	for i := 0; i < o.threads; i++ {
		x := o.h.Load(o.xAddr(i))
		if x&prepTag == 0 {
			continue
		}
		r := pmem.Addr(x &^ xTagMask)
		live[r] = true
		if x&complTag == 0 && live[r] && o.linked(r) {
			o.h.Store(o.xAddr(i), x|complTag)
			o.h.Persist(o.xAddr(i))
		}
	}
	o.pool.Sweep(func(a pmem.Addr) bool { return live[a] })
}
