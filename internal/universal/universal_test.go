package universal

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/pmem"
	"repro/internal/spec"
)

func newRegisterObj(t *testing.T, threads int) (*Object, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(h, 0, threads, 512, spec.NewRegister(0),
		[]spec.Op{spec.Read(), spec.Write(0)})
	if err != nil {
		t.Fatal(err)
	}
	return o, h
}

func newCounterObj(t *testing.T, threads, capacity int) (*Object, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 17, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(h, 0, threads, capacity, spec.NewCounter(),
		[]spec.Op{spec.Inc(), spec.Read()})
	if err != nil {
		t.Fatal(err)
	}
	return o, h
}

func TestNewValidation(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 12, Mode: pmem.Tracked})
	if _, err := New(h, 0, 0, 8, spec.NewRegister(0), []spec.Op{spec.Read()}); err == nil {
		t.Fatal("accepted zero threads")
	}
	if _, err := New(h, 0, 1, 0, spec.NewRegister(0), []spec.Op{spec.Read()}); err == nil {
		t.Fatal("accepted zero capacity")
	}
	if _, err := New(h, 0, 1, 8, spec.NewRegister(0), nil); err == nil {
		t.Fatal("accepted empty op table")
	}
}

func TestInvokeSequential(t *testing.T) {
	o, _ := newRegisterObj(t, 1)
	r, err := o.Invoke(0, spec.Read())
	if err != nil || r != spec.ValResp(0) {
		t.Fatalf("read = (%v,%v)", r, err)
	}
	if _, err := o.Invoke(0, spec.Write(9)); err != nil {
		t.Fatal(err)
	}
	r, _ = o.Invoke(0, spec.Read())
	if r != spec.ValResp(9) {
		t.Fatalf("read after write = %v", r)
	}
}

func TestUnknownOpRejected(t *testing.T) {
	o, _ := newRegisterObj(t, 1)
	if _, err := o.Invoke(0, spec.Enqueue(1)); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("err = %v, want ErrUnknownOp", err)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 13, Mode: pmem.Tracked})
	o, err := New(h, 0, 1, 4, spec.NewCounter(), []spec.Op{spec.Inc()})
	if err != nil {
		t.Fatal(err)
	}
	var last error
	for i := 0; i < 20; i++ {
		if _, err := o.Invoke(0, spec.Inc()); err != nil {
			last = err
			break
		}
	}
	if !errors.Is(last, ErrNoRecords) {
		t.Fatalf("exhaustion err = %v", last)
	}
}

func TestDetectableLifecycle(t *testing.T) {
	o, _ := newRegisterObj(t, 1)
	if r := o.Resolve(0); r != spec.PairResp(false, spec.Op{}, spec.BottomResp()) {
		t.Fatalf("fresh resolve = %v", r)
	}
	if err := o.Prep(0, spec.Write(5)); err != nil {
		t.Fatal(err)
	}
	if r := o.Resolve(0); r != spec.PairResp(true, spec.Write(5), spec.BottomResp()) {
		t.Fatalf("resolve after prep = %v", r)
	}
	resp, err := o.Exec(0)
	if err != nil || resp != spec.AckResp() {
		t.Fatalf("exec = (%v,%v)", resp, err)
	}
	if r := o.Resolve(0); r != spec.PairResp(true, spec.Write(5), spec.AckResp()) {
		t.Fatalf("resolve after exec = %v", r)
	}
	// Resolve is idempotent.
	if r := o.Resolve(0); r != spec.PairResp(true, spec.Write(5), spec.AckResp()) {
		t.Fatalf("second resolve = %v", r)
	}
}

func TestExecWithoutPrepFails(t *testing.T) {
	o, _ := newRegisterObj(t, 1)
	if _, err := o.Exec(0); err == nil {
		t.Fatal("exec without prep succeeded")
	}
}

func TestFigure2ExecutionsWithRealCrashes(t *testing.T) {
	// Reproduce Figure 2 of the paper with actual crash injection over
	// the detectable register: sweep every crash point in
	// prep-write(1); exec-write(1) and verify the resolve outcome is one
	// of the legal ones for the region the crash hit.
	for _, adv := range pmem.Adversaries(53) {
		for step := uint64(1); ; step++ {
			o, h := newRegisterObj(t, 1)
			h.ArmCrash(step)
			crashed := pmem.RunToCrash(func() {
				if err := o.Prep(0, spec.Write(1)); err != nil {
					t.Fatal(err)
				}
				if _, err := o.Exec(0); err != nil {
					t.Fatal(err)
				}
			})
			if !crashed {
				break
			}
			h.Crash(adv)
			o.Recover()
			res := o.Resolve(0)
			val, _ := o.Invoke(0, spec.Read())
			legal := map[spec.Resp]bool{
				spec.PairResp(false, spec.Op{}, spec.BottomResp()):    true, // 2(d)
				spec.PairResp(true, spec.Write(1), spec.BottomResp()): true, // 2(b,c,d)
				spec.PairResp(true, spec.Write(1), spec.AckResp()):    true, // 2(a,b)
			}
			if !legal[res] {
				t.Fatalf("step %d: illegal resolve %v", step, res)
			}
			executed := res == spec.PairResp(true, spec.Write(1), spec.AckResp())
			if executed && val != spec.ValResp(1) {
				t.Fatalf("step %d: resolved executed but register = %v", step, val)
			}
			if !executed && val != spec.ValResp(0) {
				t.Fatalf("step %d: resolved not-executed but register = %v", step, val)
			}
		}
	}
}

func TestExactlyOnceCounterAcrossCrashes(t *testing.T) {
	// The paper's "exactly once" motivation on a counter: crash at every
	// point of a detectable increment, resolve, retry only if it did not
	// take effect; the counter must end at exactly 1.
	for step := uint64(1); ; step++ {
		o, h := newCounterObj(t, 1, 64)
		h.ArmCrash(step)
		crashed := pmem.RunToCrash(func() {
			if err := o.Prep(0, spec.Inc()); err != nil {
				t.Fatal(err)
			}
			if _, err := o.Exec(0); err != nil {
				t.Fatal(err)
			}
		})
		if !crashed {
			break
		}
		h.Crash(pmem.NewRandomFates(int64(step)))
		o.Recover()
		res := o.Resolve(0)
		if res.HasOp && res.Inner == spec.None {
			// Prepared but not executed: retry exactly once.
			if _, err := o.Exec(0); err != nil {
				t.Fatal(err)
			}
		} else if !res.HasOp {
			// Prep itself was lost; the application re-runs from prep.
			if err := o.Prep(0, spec.Inc()); err != nil {
				t.Fatal(err)
			}
			if _, err := o.Exec(0); err != nil {
				t.Fatal(err)
			}
		}
		got, _ := o.Invoke(0, spec.Read())
		if got != spec.ValResp(1) {
			t.Fatalf("step %d: counter = %v after exactly-once retry (res %v)", step, got, res)
		}
	}
}

func TestConcurrentIncrementsLinearizable(t *testing.T) {
	const threads = 3
	const each = 4
	o, _ := newCounterObj(t, threads, 256)
	rec := check.NewRecorder()
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec.Begin(tid, spec.Inc())
				resp, err := o.Invoke(tid, spec.Inc())
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				rec.End(tid, resp)
			}
		}(tid)
	}
	wg.Wait()
	if r := check.Linearizable(spec.NewCounter(), rec.History()); !r.OK {
		t.Fatalf("concurrent increments not linearizable:\n%s", check.FormatHistory(rec.History()))
	}
	if got, _ := o.Invoke(0, spec.Read()); got != spec.ValResp(threads*each) {
		t.Fatalf("final counter = %v, want %d", got, threads*each)
	}
}

func TestDetectableCASObject(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 15, Mode: pmem.Tracked})
	o, err := New(h, 0, 2, 64, spec.NewCAS(0),
		[]spec.Op{spec.Read(), spec.Write(0), spec.CAS(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Prep(0, spec.CAS(0, 7)); err != nil {
		t.Fatal(err)
	}
	resp, err := o.Exec(0)
	if err != nil || resp != spec.ValResp(1) {
		t.Fatalf("cas exec = (%v,%v)", resp, err)
	}
	if r, _ := o.Invoke(1, spec.Read()); r != spec.ValResp(7) {
		t.Fatalf("read = %v, want 7", r)
	}
	// Nesting note from §2.2: this D<CAS> could serve as a base object
	// for the DSS queue; here we just confirm its resolve pair.
	if r := o.Resolve(0); r != spec.PairResp(true, spec.CAS(0, 7), spec.ValResp(1)) {
		t.Fatalf("resolve = %v", r)
	}
}

func TestQuickSequentialConformance(t *testing.T) {
	// Any single-threaded mix of detectable and plain register ops applied
	// through the universal object matches the spec applied directly.
	type step struct {
		Write      bool
		V          uint64
		Detectable bool
	}
	f := func(steps []step) bool {
		if len(steps) > 60 {
			steps = steps[:60]
		}
		h, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
		if err != nil {
			t.Fatal(err)
		}
		o, err := New(h, 0, 1, 256, spec.NewRegister(0),
			[]spec.Op{spec.Read(), spec.Write(0)})
		if err != nil {
			t.Fatal(err)
		}
		var st spec.State = spec.NewRegister(0)
		for _, s := range steps {
			op := spec.Read()
			if s.Write {
				op = spec.Write(s.V)
			}
			var got spec.Resp
			if s.Detectable {
				if err := o.Prep(0, op); err != nil {
					return false
				}
				got, err = o.Exec(0)
				if err != nil {
					return false
				}
			} else {
				got, err = o.Invoke(0, op)
				if err != nil {
					return false
				}
			}
			var want spec.Resp
			st, want, _ = st.Apply(op, 0)
			if got != want {
				return false
			}
		}
		return o.State().Key() == st.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverySweepKeepsLogIntact(t *testing.T) {
	o, h := newCounterObj(t, 1, 64)
	for i := 0; i < 5; i++ {
		if _, err := o.Invoke(0, spec.Inc()); err != nil {
			t.Fatal(err)
		}
	}
	h.CrashNow()
	h.Crash(pmem.DropAll{})
	o.Recover()
	if got, _ := o.Invoke(0, spec.Read()); got != spec.ValResp(5) {
		t.Fatalf("counter = %v after crash, want 5", got)
	}
	// The object remains fully usable.
	for i := 0; i < 5; i++ {
		if _, err := o.Invoke(0, spec.Inc()); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := o.Invoke(0, spec.Read()); got != spec.ValResp(10) {
		t.Fatalf("counter = %v, want 10", got)
	}
}
