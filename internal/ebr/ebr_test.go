package ebr

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pmem"
)

type recorder struct {
	mu    sync.Mutex
	freed []pmem.Addr
}

func (r *recorder) free(_ int, a pmem.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.freed = append(r.freed, a)
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.freed)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, func(int, pmem.Addr) {}); err == nil {
		t.Fatal("New(0, f) succeeded")
	}
	if _, err := New(1, nil); err == nil {
		t.Fatal("New(1, nil) succeeded")
	}
}

func TestRetiredBlockNotFreedWhileInGrace(t *testing.T) {
	rec := &recorder{}
	c, err := New(2, rec.free)
	if err != nil {
		t.Fatal(err)
	}
	c.Enter(0)
	c.Retire(0, 100)
	c.Exit(0)
	if rec.count() != 0 {
		t.Fatal("block freed immediately after retire")
	}
}

func TestFlushReclaimsEverything(t *testing.T) {
	rec := &recorder{}
	c, _ := New(2, rec.free)
	c.Enter(0)
	for i := pmem.Addr(1); i <= 10; i++ {
		c.Retire(0, i)
	}
	c.Exit(0)
	c.Flush()
	if rec.count() != 10 {
		t.Fatalf("Flush freed %d blocks, want 10", rec.count())
	}
}

func TestBlocksEventuallyFreedAcrossEpochs(t *testing.T) {
	rec := &recorder{}
	c, _ := New(1, rec.free)
	// Drive many operations; epoch advances and bucket reuse must free
	// old retirements without an explicit Flush.
	for i := 0; i < 10_000; i++ {
		c.Enter(0)
		c.Retire(0, pmem.Addr(i+1))
		c.Exit(0)
	}
	if rec.count() == 0 {
		t.Fatal("no block was ever freed across 10k operations")
	}
	c.Flush()
	if rec.count() != 10_000 {
		t.Fatalf("freed %d blocks total, want 10000", rec.count())
	}
}

func TestEpochAdvancesWhenAllQuiescent(t *testing.T) {
	c, _ := New(4, func(int, pmem.Addr) {})
	e0 := c.Epoch()
	for i := 0; i < retirePeriod; i++ {
		c.Enter(0)
		c.Retire(0, pmem.Addr(i+1))
		c.Exit(0)
	}
	if c.Epoch() <= e0 {
		t.Fatalf("epoch did not advance: %d -> %d", e0, c.Epoch())
	}
}

func TestStalledThreadBlocksEpoch(t *testing.T) {
	c, _ := New(2, func(int, pmem.Addr) {})
	c.Enter(1) // thread 1 never exits
	e0 := c.Epoch()
	for i := 0; i < 4*retirePeriod; i++ {
		c.Enter(0)
		c.Retire(0, pmem.Addr(i+1))
		c.Exit(0)
	}
	// Thread 1 entered at e0 and stays there; the epoch may advance at
	// most once (to e0+1 requires thread 1 to announce e0, which it did).
	if c.Epoch() > e0+1 {
		t.Fatalf("epoch advanced from %d to %d past a stalled thread", e0, c.Epoch())
	}
}

// TestNoUseAfterFreeUnderConcurrency hammers the collector from several
// goroutines: each "block" is a slot in a shared array; a reader holds a
// reference across Enter/Exit while writers retire blocks and the free
// callback poisons them. A reader observing poison while inside its epoch
// would be a use-after-free.
func TestNoUseAfterFreeUnderConcurrency(t *testing.T) {
	const (
		threads = 4
		blocks  = 1024
		rounds  = 3000
	)
	type block struct {
		data    atomic.Uint64
		retired atomic.Uint32
	}
	arena := make([]block, blocks)
	var failed atomic.Bool

	c, err := New(threads, func(_ int, a pmem.Addr) {
		// Poison on free, then immediately "reallocate" the block.
		arena[a].data.Store(^uint64(0))
		arena[a].data.Store(uint64(a))
		arena[a].retired.Store(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range arena {
		arena[i].data.Store(uint64(i))
	}

	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (tid*31 + r*7) % blocks
				c.Enter(tid)
				// "Acquire" a reference: the block is ours if we flip its
				// retired flag; then we may read it until we retire it.
				if arena[i].retired.CompareAndSwap(0, 1) {
					if arena[i].data.Load() == ^uint64(0) {
						failed.Store(true)
					}
					c.Retire(tid, pmem.Addr(i))
					if arena[i].data.Load() == ^uint64(0) {
						failed.Store(true) // freed before our Exit
					}
				}
				c.Exit(tid)
			}
		}(tid)
	}
	wg.Wait()
	if failed.Load() {
		t.Fatal("observed poisoned block inside an epoch: use-after-free")
	}
}

func TestResetDropsLimboWithoutFreeing(t *testing.T) {
	rec := &recorder{}
	c, _ := New(1, rec.free)
	c.Enter(0)
	c.Retire(0, 1)
	c.Retire(0, 2)
	c.Exit(0)
	c.Reset()
	c.Flush()
	if rec.count() != 0 {
		t.Fatalf("Reset leaked %d frees", rec.count())
	}
	if c.Epoch() != 1 {
		t.Fatalf("Epoch after Reset = %d, want 1", c.Epoch())
	}
	// Collector must be fully usable after Reset.
	for i := 0; i < 3*retirePeriod; i++ {
		c.Enter(0)
		c.Retire(0, pmem.Addr(i+1))
		c.Exit(0)
	}
	c.Flush()
	if rec.count() != 3*retirePeriod {
		t.Fatalf("after Reset, freed %d, want %d", rec.count(), 3*retirePeriod)
	}
}

func TestRetireSameAddressTwiceFreesTwice(t *testing.T) {
	// The collector does not deduplicate; callers own that invariant. This
	// test documents the contract.
	rec := &recorder{}
	c, _ := New(1, rec.free)
	c.Enter(0)
	c.Retire(0, 5)
	c.Retire(0, 5)
	c.Exit(0)
	c.Flush()
	if rec.count() != 2 {
		t.Fatalf("freed %d, want 2", rec.count())
	}
}

func TestDrainHookRunsBeforeBatches(t *testing.T) {
	rec := &recorder{}
	c, _ := New(1, rec.free)
	hooks := 0
	c.SetDrainHook(func(tid int) {
		hooks++
		if rec.count() != 0 && hooks == 1 {
			t.Error("hook ran after frees of its batch")
		}
	})
	c.Enter(0)
	for i := pmem.Addr(1); i <= 5; i++ {
		c.Retire(0, i)
	}
	c.Exit(0)
	c.Flush()
	if hooks == 0 {
		t.Fatal("drain hook never ran")
	}
	if rec.count() != 5 {
		t.Fatalf("freed %d, want 5", rec.count())
	}
}

func TestCollectFreesGraceElapsedBuckets(t *testing.T) {
	rec := &recorder{}
	c, _ := New(1, rec.free)
	c.Enter(0)
	c.Retire(0, 1)
	c.Exit(0)
	if rec.count() != 0 {
		t.Fatal("freed too early")
	}
	// Collect advances the (quiescent) epoch twice and drains.
	c.Collect(0)
	if rec.count() != 1 {
		t.Fatalf("Collect freed %d, want 1", rec.count())
	}
}

func TestCollectIsSafeWhileActive(t *testing.T) {
	rec := &recorder{}
	c, _ := New(2, rec.free)
	c.Enter(0)
	c.Retire(0, 1)
	// Active caller: at most one epoch advance is possible, so the fresh
	// retirement must NOT be freed.
	c.Collect(0)
	if rec.count() != 0 {
		t.Fatal("Collect freed a block inside its grace period")
	}
	c.Exit(0)
}
