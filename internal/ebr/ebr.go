// Package ebr implements epoch-based memory reclamation (Fraser-style) for
// addresses into a simulated persistent heap.
//
// The paper's evaluation returns dequeued queue nodes to per-thread free
// pools "using epoch-based reclamation (EBR)", borrowing the EBR code from
// Microsoft's PMwCAS implementation. This package plays that role here: a
// thread brackets each data-structure operation with Enter/Exit, retires
// unlinked blocks with Retire, and the collector hands a retired block to
// the free callback only after every thread that could still hold a
// reference has passed through a quiescent point.
//
// All collector metadata is volatile, as in the paper: after a simulated
// crash the collector is Reset and the data structure's recovery sweep
// reclaims whatever was in limbo.
package ebr

import (
	"fmt"
	"sync/atomic"

	"repro/internal/pmem"
)

// retirePeriod is how many retirements a thread buffers between attempts
// to advance the global epoch.
const retirePeriod = 32

// FreeFunc receives a block whose grace period has elapsed. tid is the
// thread on whose behalf the block is freed.
type FreeFunc func(tid int, a pmem.Addr)

// slot is one thread's epoch announcement, padded to its own cache line so
// announcements do not false-share.
type slot struct {
	// word is epoch<<1 | active.
	word atomic.Uint64
	_    [56]byte
}

// bucket holds blocks retired during one epoch.
type bucket struct {
	epoch uint64
	addrs []pmem.Addr
}

// perThread is a thread's private limbo state; accessed only by its owner.
type perThread struct {
	buckets [3]bucket
	retires int
	_       [40]byte
}

// Collector is an epoch-based reclamation domain. Enter, Exit, and Retire
// must be called with the caller's own thread ID; distinct threads may call
// concurrently.
type Collector struct {
	threads   int
	free      FreeFunc
	drainHook func(tid int)
	epoch     atomic.Uint64
	slots     []slot
	local     []perThread
}

// SetDrainHook registers a callback invoked once, by the draining thread,
// immediately before each non-empty batch of blocks is freed. The DSS queue
// uses this to persist its head and tail pointers before any node becomes
// reusable, which keeps the persisted list scannable by recovery. Must be
// called before the collector is shared.
func (c *Collector) SetDrainHook(hook func(tid int)) { c.drainHook = hook }

// New creates a collector for threads worker threads. free is invoked when
// a retired block becomes reclaimable.
func New(threads int, free FreeFunc) (*Collector, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("ebr: need at least one thread, got %d", threads)
	}
	if free == nil {
		return nil, fmt.Errorf("ebr: nil free callback")
	}
	c := &Collector{
		threads: threads,
		free:    free,
		slots:   make([]slot, threads),
		local:   make([]perThread, threads),
	}
	c.epoch.Store(1)
	return c, nil
}

// Enter marks the start of an operation by thread tid: from now until Exit,
// blocks the thread can reach are protected from reclamation.
func (c *Collector) Enter(tid int) {
	e := c.epoch.Load()
	c.slots[tid].word.Store(e<<1 | 1)
}

// Exit marks the end of an operation by thread tid.
func (c *Collector) Exit(tid int) {
	c.slots[tid].word.Store(0)
}

// Retire hands block a to the collector on behalf of tid. The block will be
// passed to the free callback once no thread can still hold a reference
// from before its unlinking. Retire must be called between Enter and Exit.
func (c *Collector) Retire(tid int, a pmem.Addr) {
	lt := &c.local[tid]
	e := c.epoch.Load()
	b := &lt.buckets[e%3]
	if b.epoch != e {
		// This bucket slot was last used in an epoch at least 3 behind, so
		// its contents are at least two grace periods old: reclaim them
		// before reusing the slot.
		c.drain(tid, b)
		b.epoch = e
	}
	b.addrs = append(b.addrs, a)
	lt.retires++
	if lt.retires%retirePeriod == 0 {
		c.tryAdvance()
	}
}

// drain frees every block in b and empties it.
func (c *Collector) drain(tid int, b *bucket) {
	if len(b.addrs) == 0 {
		return
	}
	if c.drainHook != nil {
		c.drainHook(tid)
	}
	for _, a := range b.addrs {
		c.free(tid, a)
	}
	b.addrs = b.addrs[:0]
}

// tryAdvance bumps the global epoch if every active thread has announced
// the current one. Failure is fine: a later attempt will succeed once the
// laggard exits or catches up, which is what makes reclamation (but not the
// data structure) dependent on thread progress.
func (c *Collector) tryAdvance() bool {
	e := c.epoch.Load()
	for i := range c.slots {
		w := c.slots[i].word.Load()
		if w&1 == 1 && w>>1 != e {
			return false
		}
	}
	return c.epoch.CompareAndSwap(e, e+1)
}

// Epoch reports the current global epoch (for tests and introspection).
func (c *Collector) Epoch() uint64 { return c.epoch.Load() }

// Collect is the allocation-pressure slow path: it tries to advance the
// epoch and frees every block of tid's whose grace period (two epochs
// since retirement) has elapsed. Callers use it when their free pool runs
// dry before the lazy reclamation in Retire catches up. Safe to call even
// between Enter and Exit: while the caller is active it merely blocks the
// second epoch advance, so only genuinely grace-elapsed buckets drain.
func (c *Collector) Collect(tid int) {
	c.tryAdvance()
	c.tryAdvance()
	e := c.epoch.Load()
	lt := &c.local[tid]
	for i := range lt.buckets {
		b := &lt.buckets[i]
		if b.epoch != 0 && b.epoch+2 <= e {
			c.drain(tid, b)
			b.epoch = 0
		}
	}
}

// Flush reclaims every block in limbo. It must only be called when no
// thread is between Enter and Exit (teardown, or a quiescent barrier).
func (c *Collector) Flush() {
	for tid := range c.local {
		lt := &c.local[tid]
		for i := range lt.buckets {
			c.drain(tid, &lt.buckets[i])
		}
	}
}

// Reset discards all collector state without freeing anything. It models a
// crash: limbo lists were volatile, so the blocks they referenced are
// recovered (or leaked) by the owning structure's recovery sweep instead.
func (c *Collector) Reset() {
	c.epoch.Store(1)
	for i := range c.slots {
		c.slots[i].word.Store(0)
	}
	for tid := range c.local {
		lt := &c.local[tid]
		lt.retires = 0
		for i := range lt.buckets {
			lt.buckets[i] = bucket{}
		}
	}
}
