// Package reg applies the DSS transformation to a third object family: a
// lock-free, strictly linearizable, detectable swap/CAS register, in the
// spirit of "Recoverable and Detectable Self-Implementations of Swap"
// (Ben-Baruch, Hendler, Rusanovsky). Where the queue and stack detect
// through per-node claim fields, the register detects through the chain
// of displaced value nodes: every mutator installs a fresh node by CAS on
// the register pointer R, so an operation verifiably took effect iff its
// node is the current node or was later displaced (its taken flag is
// set). Reads and failed compare-and-swaps have no effect to witness;
// they become detectable by recording their response in the caller's
// detectability line X[i] before returning — a crash that outruns the
// record legitimately un-executes them.
//
// Persistent layout (word offsets within one cache line per node):
//
//	node: [0] value, [1] prev, [2] prevVal, [3] taken, [4] havePrev,
//	      [5] expect
//	metadata: config line, R on its own line, X[i] each on its own line.
//
// The exec protocol for a mutator (write, swap, successful cas) is
//
//	n.prev = cur; persist n
//	CAS(R, cur, n); persist R
//	cur.taken = 1; persist cur            (3')
//	n.prevVal = cur.value; n.havePrev = 1; persist n   (4')
//	X[i] |= compl; persist X[i]
//	retire cur
//
// Ordering 3' before 4' and both before the retirement is what recovery
// leans on: a node is retired (and thus eligible for reuse) only after
// its displacement is fully settled, so the recovery fixpoint only ever
// dereferences prev pointers of un-retired nodes, and a node's owner can
// always prove execution from taken/R even when the crash interrupts the
// displacer mid-settlement.
package reg

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/ebr"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// Node field offsets (one line per node).
const (
	offValue   = 0
	offPrev    = 1
	offPrevVal = 2
	offTaken   = 3
	offHave    = 4
	offExpect  = 5
	nodeWords  = pmem.WordsPerLine
)

// X-word encoding: bit 63 prep, bits 62-61 the operation kind, bit 60
// compl (response recorded / settlement finished), bit 59 cas-failure;
// the low bits hold the node address of a mutator's prepared node.
const (
	prepTag   = uint64(1) << 63
	kindShift = 61
	kindMask  = uint64(3) << kindShift
	complTag  = uint64(1) << 60
	failTag   = uint64(1) << 59
	tagMask   = prepTag | kindMask | complTag | failTag
)

// X-word kind values.
const (
	kRead = uint64(iota)
	kWrite
	kSwap
	kCAS
)

// X-line word offsets: word 0 is the tagged word, word 1 records the
// response value of a read or the witnessed value of a failed cas —
// both words share the line, so recording a response is one persist.
const (
	xWord = 0
	xVal  = 1
)

// ErrNoNodes is returned when the node pool is exhausted.
var ErrNoNodes = errors.New("reg: node pool exhausted")

// Config parameterizes a detectable register.
type Config struct {
	// Threads is the number of worker threads (tids 0..Threads-1).
	Threads int
	// NodesPerThread sizes each thread's pre-allocated node pool.
	NodesPerThread int
	// ExtraNodes adds shared spare nodes (the initial node comes from
	// here).
	ExtraNodes int
	// Init is the register's initial value.
	Init uint64
}

// Reg is a detectable recoverable swap/CAS register. All exported
// methods except New, Attach, Recover, ResetVolatile and AbandonPrep are
// safe for concurrent use by distinct threads, each passing its own tid.
type Reg struct {
	h    *pmem.Heap
	pool *pmem.Pool
	rec  *ebr.Collector

	r     pmem.Addr // address of the register pointer word
	xBase pmem.Addr

	threads int
}

// Persistent configuration line offsets.
const (
	cfgMagic   = 0
	cfgThreads = 1
	cfgNodes   = 2
	cfgExtra   = 3
	cfgPool    = 4
)

// magicReg identifies an initialized detectable register's metadata.
const magicReg = 0x4453_5352 // "DSSR"

// New allocates and initializes a detectable register on h, registering
// its metadata in heap root slot rootSlot.
func New(h *pmem.Heap, rootSlot int, cfg Config) (*Reg, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("reg: need at least one thread, got %d", cfg.Threads)
	}
	if cfg.NodesPerThread < 0 || cfg.ExtraNodes < 1 {
		return nil, fmt.Errorf("reg: pool sizing must include at least one extra node for the initial value")
	}
	meta, err := h.Alloc((2 + cfg.Threads) * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("reg: metadata: %w", err)
	}
	g := &Reg{
		h:       h,
		r:       meta + pmem.WordsPerLine,
		xBase:   meta + 2*pmem.WordsPerLine,
		threads: cfg.Threads,
	}
	g.pool, err = pmem.NewPool(h, pmem.PoolConfig{
		Threads:         cfg.Threads,
		BlocksPerThread: cfg.NodesPerThread,
		ExtraBlocks:     cfg.ExtraNodes,
		BlockWords:      nodeWords,
		Pinned:          g.pinned,
	})
	if err != nil {
		return nil, fmt.Errorf("reg: node pool: %w", err)
	}
	h.Store(meta+cfgThreads, uint64(cfg.Threads))
	h.Store(meta+cfgNodes, uint64(cfg.NodesPerThread))
	h.Store(meta+cfgExtra, uint64(cfg.ExtraNodes))
	h.Store(meta+cfgPool, uint64(g.pool.Base()))
	h.Store(meta+cfgMagic, magicReg)
	h.Persist(meta)
	g.rec, err = ebr.New(cfg.Threads, func(tid int, a pmem.Addr) {
		g.pool.Free(tid, a)
	})
	if err != nil {
		return nil, fmt.Errorf("reg: reclamation: %w", err)
	}
	// Reuse fence: persist R before any retired node becomes reusable, so
	// the persisted register pointer a crash revives never names a reused
	// node (the settlement flags already guarantee recovery stops before
	// dereferencing into retired territory; see the package comment).
	g.rec.SetDrainHook(func(int) { g.h.Persist(g.r) })

	init, ok := g.pool.Alloc(0)
	if !ok {
		return nil, fmt.Errorf("reg: no node available for the initial value")
	}
	g.initNode(init, cfg.Init, 0)
	g.h.Store(g.r, uint64(init))
	g.h.Persist(g.r)
	for i := 0; i < cfg.Threads; i++ {
		g.h.Store(g.xAddr(i), 0)
	}
	g.h.PersistRange(g.xBase, cfg.Threads*pmem.WordsPerLine)
	h.SetRoot(rootSlot, meta)
	return g, nil
}

// Attach reconstructs the handle of an existing register from heap root
// slot rootSlot. The caller must run Recover before resuming operations.
func Attach(h *pmem.Heap, rootSlot int) (*Reg, error) {
	meta := h.Root(rootSlot)
	if meta == 0 {
		return nil, fmt.Errorf("reg: root slot %d is empty", rootSlot)
	}
	if h.Load(meta+cfgMagic) != magicReg {
		return nil, fmt.Errorf("reg: root slot %d does not hold a detectable register", rootSlot)
	}
	threads := int(h.Load(meta + cfgThreads))
	if threads <= 0 || threads > 1<<16 {
		return nil, fmt.Errorf("reg: corrupt thread count %d", threads)
	}
	g := &Reg{
		h:       h,
		r:       meta + pmem.WordsPerLine,
		xBase:   meta + 2*pmem.WordsPerLine,
		threads: threads,
	}
	var err error
	g.pool, err = pmem.AttachPool(h, pmem.Addr(h.Load(meta+cfgPool)), pmem.PoolConfig{
		Threads:         threads,
		BlocksPerThread: int(h.Load(meta + cfgNodes)),
		ExtraBlocks:     int(h.Load(meta + cfgExtra)),
		BlockWords:      nodeWords,
		Pinned:          g.pinned,
	})
	if err != nil {
		return nil, fmt.Errorf("reg: node pool: %w", err)
	}
	g.rec, err = ebr.New(threads, func(tid int, a pmem.Addr) {
		g.pool.Free(tid, a)
	})
	if err != nil {
		return nil, fmt.Errorf("reg: reclamation: %w", err)
	}
	g.rec.SetDrainHook(func(int) { g.h.Persist(g.r) })
	return g, nil
}

// Threads reports the register's thread count.
func (g *Reg) Threads() int { return g.threads }

// Heap returns the register's underlying heap.
func (g *Reg) Heap() *pmem.Heap { return g.h }

// Value peeks at the current value without charging modeled accesses
// (test and tooling access only).
func (g *Reg) Value() uint64 {
	n := pmem.Addr(g.h.LoadVolatile(g.r))
	return g.h.LoadVolatile(n + offValue)
}

// FreeNodes exposes pool occupancy for tests.
func (g *Reg) FreeNodes() int { return g.pool.FreeCount() }

// Quiesce drains all pending reclamation (test access: the space-bound
// accounting needs a quiescent pool).
func (g *Reg) Quiesce() { g.rec.Flush() }

// Capacity exposes the pool's block count for the space-bound tests.
func (g *Reg) Capacity() int { return g.pool.Capacity() }

func (g *Reg) xAddr(tid int) pmem.Addr {
	return g.xBase + pmem.Addr(tid*pmem.WordsPerLine)
}

func ptrOf(x uint64) pmem.Addr { return pmem.Addr(x &^ tagMask) }

func kindOf(x uint64) uint64 { return x & kindMask >> kindShift }

// pinned vetoes recycling of any node the register pointer or a
// detectability word references in either the coherent or the persisted
// view: such a node's value (and, for a mutator's own node, its prevVal)
// must stay readable for resolve. The scan is simulator-side reclamation
// bookkeeping, so it reads through LoadVolatile (uncharged; see
// core.Queue.pinned).
func (g *Reg) pinned(a pmem.Addr) bool {
	if pmem.Addr(g.h.LoadVolatile(g.r)) == a {
		return true
	}
	tracked := g.h.Mode() == pmem.Tracked
	if tracked && pmem.Addr(g.h.PersistedLoad(g.r)) == a {
		return true
	}
	for i := 0; i < g.threads; i++ {
		if ptrOf(g.h.LoadVolatile(g.xAddr(i))) == a {
			return true
		}
		if tracked && ptrOf(g.h.PersistedLoad(g.xAddr(i))) == a {
			return true
		}
	}
	return false
}

func (g *Reg) allocNode(tid int) (pmem.Addr, bool) {
	for attempt := 0; attempt < 128; attempt++ {
		if a, ok := g.pool.Alloc(tid); ok {
			return a, true
		}
		g.rec.Collect(tid)
		runtime.Gosched()
	}
	return 0, false
}

// initNode writes a fresh node's fields and persists them (one line).
// The settlement flags are explicitly zeroed: the node may be a reused
// block whose previous life ended taken.
func (g *Reg) initNode(node pmem.Addr, v, expect uint64) {
	g.h.Store(node+offValue, v)
	g.h.Store(node+offPrev, 0)
	g.h.Store(node+offPrevVal, 0)
	g.h.Store(node+offTaken, 0)
	g.h.Store(node+offHave, 0)
	g.h.Store(node+offExpect, expect)
	g.h.Persist(node)
}

// reclaimPrep returns the node of a superseded prepared mutator to the
// pool when it verifiably never took effect.
//
// For a completed operation the owner's X word is the authority: the
// fail tag was written atomically with the outcome, so it says exactly
// whether the node was ever installed. An installed node must NOT be
// freed here even when it is no longer current — between a displacer's
// install CAS and its settle the node is neither current nor taken,
// yet the displacer still dereferences it; freeing in that window
// hands live memory to the allocator. Installed nodes are retired by
// their displacer through the collector instead. The structural
// not-current-and-not-taken check is kept only for an incomplete prep
// (AbandonPrep, recovery), which runs with no concurrent displacers.
func (g *Reg) reclaimPrep(tid int, oldX uint64) {
	if oldX&prepTag == 0 || kindOf(oldX) == kRead {
		return
	}
	node := ptrOf(oldX)
	if node == 0 {
		return
	}
	if oldX&complTag != 0 {
		if oldX&failTag != 0 {
			g.pool.Free(tid, node)
		}
		return
	}
	if pmem.Addr(g.h.Load(g.r)) != node && g.h.Load(node+offTaken) == 0 {
		g.pool.Free(tid, node)
	}
}

// PrepRead declares the detectable intent to read (Axiom 1).
func (g *Reg) PrepRead(tid int) {
	oldX := g.h.Load(g.xAddr(tid))
	g.h.Store(g.xAddr(tid), prepTag|kRead<<kindShift)
	g.h.Persist(g.xAddr(tid))
	g.reclaimPrep(tid, oldX)
}

// PrepWrite declares the detectable intent to write v (Axiom 1).
func (g *Reg) PrepWrite(tid int, v uint64) error {
	return g.prepMutator(tid, kWrite, v, 0)
}

// PrepSwap declares the detectable intent to swap in v (Axiom 1).
func (g *Reg) PrepSwap(tid int, v uint64) error {
	return g.prepMutator(tid, kSwap, v, 0)
}

// PrepCAS declares the detectable intent to compare-and-swap expect for
// v (Axiom 1).
func (g *Reg) PrepCAS(tid int, expect, v uint64) error {
	return g.prepMutator(tid, kCAS, v, expect)
}

func (g *Reg) prepMutator(tid int, kind, v, expect uint64) error {
	oldX := g.h.Load(g.xAddr(tid))
	node, ok := g.allocNode(tid)
	if !ok {
		return ErrNoNodes
	}
	g.initNode(node, v, expect)
	g.h.Store(g.xAddr(tid), uint64(node)|prepTag|kind<<kindShift)
	g.h.Persist(g.xAddr(tid))
	if node != ptrOf(oldX) {
		g.reclaimPrep(tid, oldX)
	}
	return nil
}

// ExecRead performs the prepared read (Axiom 2), recording the response
// durably before returning.
func (g *Reg) ExecRead(tid int) uint64 {
	g.rec.Enter(tid)
	v := g.currentValue()
	g.rec.Exit(tid)
	x := g.h.Load(g.xAddr(tid))
	g.h.Store(g.xAddr(tid)+xVal, v)
	g.h.Store(g.xAddr(tid), x|complTag)
	g.h.Persist(g.xAddr(tid))
	return v
}

// currentValue reads the register through its current node. Node values
// are immutable, so the value read is the register's value at the moment
// R was loaded (the linearization point), even if the node is displaced
// in between; EBR pinning keeps the node readable.
func (g *Reg) currentValue() uint64 {
	cur := pmem.Addr(g.h.Load(g.r))
	return g.h.Load(cur + offValue)
}

// ExecWrite performs the prepared write (Axiom 2).
func (g *Reg) ExecWrite(tid int) {
	g.execMutator(tid)
}

// ExecSwap performs the prepared swap (Axiom 2), returning the displaced
// value.
func (g *Reg) ExecSwap(tid int) uint64 {
	_, prev := g.execMutator(tid)
	return prev
}

// ExecCAS performs the prepared compare-and-swap (Axiom 2): ok reports
// success and witness is the value the operation observed (the expected
// value on success).
func (g *Reg) ExecCAS(tid int) (ok bool, witness uint64) {
	return g.execMutator(tid)
}

// execMutator runs the install protocol for the prepared mutator node.
// For a cas whose expectation fails, it records the failure in X[tid]
// and leaves the node uninstalled.
func (g *Reg) execMutator(tid int) (bool, uint64) {
	x := g.h.Load(g.xAddr(tid))
	if x&prepTag == 0 || x&complTag != 0 {
		return false, 0
	}
	node := ptrOf(x)
	if node == 0 {
		return false, 0
	}
	isCAS := kindOf(x) == kCAS
	var expect uint64
	if isCAS {
		expect = g.h.Load(node + offExpect)
	}
	g.rec.Enter(tid)
	defer g.rec.Exit(tid)
	for {
		cur := pmem.Addr(g.h.Load(g.r))
		if isCAS {
			v := g.h.Load(cur + offValue)
			if v != expect {
				// Failed cas: no effect to witness; record the response
				// (success 0, witnessed value) in the X line and stop.
				g.h.Store(g.xAddr(tid)+xVal, v)
				g.h.Store(g.xAddr(tid), x|complTag|failTag)
				g.h.Persist(g.xAddr(tid))
				return false, v
			}
		}
		g.h.Store(node+offPrev, uint64(cur))
		g.h.Persist(node)
		if g.h.CompareAndSwap(g.r, uint64(cur), uint64(node)) {
			g.h.Persist(g.r)
			prev := g.settle(tid, node, cur)
			g.h.Store(g.xAddr(tid), x|complTag)
			g.h.Persist(g.xAddr(tid))
			g.rec.Retire(tid, cur)
			return true, prev
		}
	}
}

// settle finishes node's displacement of cur: mark cur taken (3'), then
// copy its value into node as the operation's previous-value response
// (4'). Persisted in that order so that execution of cur's owner is
// provable before node's response depends on it, and both before cur can
// ever be retired.
func (g *Reg) settle(tid int, node, cur pmem.Addr) uint64 {
	g.h.Store(cur+offTaken, 1)
	g.h.Persist(cur)
	prev := g.h.Load(cur + offValue)
	g.h.Store(node+offPrevVal, prev)
	g.h.Store(node+offHave, 1)
	g.h.Persist(node)
	return prev
}

// Read is the non-detectable read (Axiom 4).
func (g *Reg) Read(tid int) uint64 {
	g.rec.Enter(tid)
	defer g.rec.Exit(tid)
	return g.currentValue()
}

// Write is the non-detectable write (Axiom 4).
func (g *Reg) Write(tid int, v uint64) error {
	_, _, err := g.invoke(tid, v, 0, false)
	return err
}

// Swap is the non-detectable swap (Axiom 4).
func (g *Reg) Swap(tid int, v uint64) (uint64, error) {
	_, prev, err := g.invoke(tid, v, 0, false)
	return prev, err
}

// CAS is the non-detectable compare-and-swap (Axiom 4).
func (g *Reg) CAS(tid int, expect, v uint64) (ok bool, witness uint64, err error) {
	return g.invoke(tid, v, expect, true)
}

// invoke installs a fresh node without touching X[tid]. It runs the same
// settlement protocol as a detectable exec — the taken flags it sets are
// what other threads' detectable resolves read.
func (g *Reg) invoke(tid int, v, expect uint64, isCAS bool) (bool, uint64, error) {
	node, ok := g.allocNode(tid)
	if !ok {
		return false, 0, ErrNoNodes
	}
	g.initNode(node, v, expect)
	g.rec.Enter(tid)
	defer g.rec.Exit(tid)
	for {
		cur := pmem.Addr(g.h.Load(g.r))
		if isCAS {
			w := g.h.Load(cur + offValue)
			if w != expect {
				g.pool.Free(tid, node)
				return false, w, nil
			}
		}
		g.h.Store(node+offPrev, uint64(cur))
		g.h.Persist(node)
		if g.h.CompareAndSwap(g.r, uint64(cur), uint64(node)) {
			g.h.Persist(g.r)
			prev := g.settle(tid, node, cur)
			g.rec.Retire(tid, cur)
			return true, prev, nil
		}
	}
}

// OpName identifies a register operation in a Resolution.
type OpName int

const (
	// OpNone means no operation was prepared.
	OpNone OpName = iota + 1
	// OpRead is a prepared read.
	OpRead
	// OpWrite is a prepared write.
	OpWrite
	// OpSwap is a prepared swap.
	OpSwap
	// OpCAS is a prepared compare-and-swap.
	OpCAS
)

// String returns the operation name.
func (o OpName) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSwap:
		return "swap"
	case OpCAS:
		return "cas"
	default:
		return fmt.Sprintf("OpName(%d)", int(o))
	}
}

// Resolution is the register's decoded (A[p], R[p]) pair.
type Resolution struct {
	// Op is the prepared operation, or OpNone.
	Op OpName
	// Arg is the argument of a prepared write/swap, or the new value of
	// a prepared cas.
	Arg uint64
	// Expect is the expected value of a prepared cas.
	Expect uint64
	// Executed reports whether the operation took effect (R[p] ≠ ⊥).
	Executed bool
	// Val is the response's first word: the value read, the value a swap
	// displaced, or the success bit of a cas.
	Val uint64
	// Val2 is the response's second word: the value a cas witnessed.
	Val2 uint64
}

// Resolve reports the most recently prepared operation and its outcome
// (Axiom 3). Total and idempotent.
func (g *Reg) Resolve(tid int) Resolution {
	x := g.h.Load(g.xAddr(tid))
	if x&prepTag == 0 {
		return Resolution{Op: OpNone}
	}
	switch kindOf(x) {
	case kRead:
		res := Resolution{Op: OpRead}
		if x&complTag != 0 {
			res.Executed = true
			res.Val = g.h.Load(g.xAddr(tid) + xVal)
		}
		return res
	case kWrite:
		node := ptrOf(x)
		return Resolution{
			Op:       OpWrite,
			Arg:      g.h.Load(node + offValue),
			Executed: g.installed(x, node),
		}
	case kSwap:
		node := ptrOf(x)
		res := Resolution{Op: OpSwap, Arg: g.h.Load(node + offValue)}
		if g.installed(x, node) {
			res.Executed = true
			res.Val = g.h.Load(node + offPrevVal)
		}
		return res
	default: // kCAS
		node := ptrOf(x)
		res := Resolution{
			Op:     OpCAS,
			Arg:    g.h.Load(node + offValue),
			Expect: g.h.Load(node + offExpect),
		}
		switch {
		case x&failTag != 0:
			res.Executed = true
			res.Val = 0
			res.Val2 = g.h.Load(g.xAddr(tid) + xVal)
		case g.installed(x, node):
			res.Executed = true
			res.Val = 1
			res.Val2 = g.h.Load(node + offPrevVal)
		}
		return res
	}
}

// installed reports whether a mutator's node verifiably entered the
// register: the owner finished (compl), or the node is current, or a
// displacer marked it taken.
func (g *Reg) installed(x uint64, node pmem.Addr) bool {
	if x&complTag != 0 {
		return true
	}
	if pmem.Addr(g.h.Load(g.r)) == node {
		return true
	}
	return g.h.Load(node+offTaken) != 0
}

// Resp converts the resolution to the spec package's resolve response
// for conformance checking against D⟨swap-register⟩.
func (r Resolution) Resp() spec.Resp {
	var op spec.Op
	switch r.Op {
	case OpRead:
		op = spec.Read()
	case OpWrite:
		op = spec.Write(r.Arg)
	case OpSwap:
		op = spec.Swap(r.Arg)
	case OpCAS:
		op = spec.CAS(r.Expect, r.Arg)
	default:
		return spec.PairResp(false, spec.Op{}, spec.BottomResp())
	}
	inner := spec.BottomResp()
	if r.Executed {
		switch r.Op {
		case OpRead, OpSwap:
			inner = spec.ValResp(r.Val)
		case OpWrite:
			inner = spec.AckResp()
		case OpCAS:
			inner = spec.ValResp2(r.Val, r.Val2)
		}
	}
	return spec.PairResp(true, op, inner)
}

// AbandonPrep withdraws tid's currently prepared-but-unexecuted
// operation, clearing X[tid] (persisted) and returning an uninstalled
// node to the pool (see core.Queue.AbandonPrep for the contract).
func (g *Reg) AbandonPrep(tid int) {
	x := g.h.Load(g.xAddr(tid))
	if x == 0 {
		return
	}
	// Clear and persist X first so the node is no longer pinned by the
	// recycling veto and no crash can resurrect the abandoned intent.
	g.h.Store(g.xAddr(tid), 0)
	g.h.Persist(g.xAddr(tid))
	g.reclaimPrep(tid, x)
}

// Recover is the register's centralized recovery: a fixpoint over the
// detectability words that completes every interrupted settlement, then
// a pool sweep. Contract as in core.Queue.Recover: single-threaded,
// after Heap.Crash, before any thread resumes; idempotent.
//
// Every node with an unsettled displacement below it is referenced by
// its owner's X (the owner overwrites X only after exec returns, and
// exec returns only after settling), so walking the X entries reaches
// every displacement recovery must complete; the chain below the
// register pointer needs no separate walk. Settling one node can prove
// another's execution (its taken flag appears), hence the fixpoint.
func (g *Reg) Recover() {
	for changed := true; changed; {
		changed = false
		for i := 0; i < g.threads; i++ {
			x := g.h.Load(g.xAddr(i))
			if x&prepTag == 0 || kindOf(x) == kRead || x&complTag != 0 {
				continue
			}
			node := ptrOf(x)
			if node == 0 || !g.installed(x, node) {
				continue
			}
			if g.h.Load(node+offHave) != 0 {
				continue
			}
			prev := pmem.Addr(g.h.Load(node + offPrev))
			if prev == 0 {
				continue
			}
			// The displacer crashed mid-settlement, so prev was never
			// retired: its fields are intact. Re-run the settlement.
			if g.h.Load(prev+offTaken) == 0 {
				g.h.Store(prev+offTaken, 1)
				g.h.Persist(prev)
				changed = true
			}
			g.h.Store(node+offPrevVal, g.h.Load(prev+offValue))
			g.h.Store(node+offHave, 1)
			g.h.Persist(node)
		}
	}

	g.rec.Reset()
	live := map[pmem.Addr]bool{pmem.Addr(g.h.Load(g.r)): true}
	for i := 0; i < g.threads; i++ {
		if p := ptrOf(g.h.Load(g.xAddr(i))); p != 0 {
			live[p] = true
		}
	}
	g.pool.Sweep(func(a pmem.Addr) bool { return live[a] })
}

// ResetVolatile re-initializes the register's volatile companions (EBR)
// without touching persistent state (see core.Queue.ResetVolatile).
func (g *Reg) ResetVolatile() {
	g.rec.Reset()
}
