package reg

import (
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/pmem"
	"repro/internal/spec"
)

func newTestReg(t *testing.T, threads int, init uint64) (*Reg, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(h, 0, Config{Threads: threads, NodesPerThread: 8, ExtraNodes: 4, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	return g, h
}

func TestNewValidation(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 12, Mode: pmem.Tracked})
	if _, err := New(h, 0, Config{Threads: 0, ExtraNodes: 1}); err == nil {
		t.Fatal("accepted zero threads")
	}
	if _, err := New(h, 0, Config{Threads: 1, ExtraNodes: 0}); err == nil {
		t.Fatal("accepted zero extra nodes (no room for the initial node)")
	}
}

func TestBasicOps(t *testing.T) {
	g, _ := newTestReg(t, 2, 5)
	if v := g.Read(0); v != 5 {
		t.Fatalf("initial read = %d, want 5", v)
	}
	if err := g.Write(0, 7); err != nil {
		t.Fatal(err)
	}
	if prev, err := g.Swap(1, 9); err != nil || prev != 7 {
		t.Fatalf("swap = (%d, %v), want (7, nil)", prev, err)
	}
	if ok, w, err := g.CAS(0, 9, 11); err != nil || !ok || w != 9 {
		t.Fatalf("cas(9→11) = (%v, %d, %v), want success witnessing 9", ok, w, err)
	}
	if ok, w, err := g.CAS(1, 9, 12); err != nil || ok || w != 11 {
		t.Fatalf("cas(9→12) = (%v, %d, %v), want failure witnessing 11", ok, w, err)
	}
	if v := g.Read(1); v != 11 {
		t.Fatalf("final read = %d, want 11", v)
	}
}

func TestDetectableOps(t *testing.T) {
	g, _ := newTestReg(t, 1, 1)

	g.PrepRead(0)
	if v := g.ExecRead(0); v != 1 {
		t.Fatalf("detectable read = %d, want 1", v)
	}
	res := g.Resolve(0)
	if res.Op != OpRead || !res.Executed || res.Val != 1 {
		t.Fatalf("read resolution = %+v", res)
	}

	if err := g.PrepWrite(0, 2); err != nil {
		t.Fatal(err)
	}
	res = g.Resolve(0)
	if res.Op != OpWrite || res.Arg != 2 || res.Executed {
		t.Fatalf("prepared write resolution = %+v", res)
	}
	g.ExecWrite(0)
	res = g.Resolve(0)
	if res.Op != OpWrite || !res.Executed {
		t.Fatalf("executed write resolution = %+v", res)
	}

	if err := g.PrepSwap(0, 3); err != nil {
		t.Fatal(err)
	}
	if prev := g.ExecSwap(0); prev != 2 {
		t.Fatalf("swap displaced %d, want 2", prev)
	}
	res = g.Resolve(0)
	if res.Op != OpSwap || res.Arg != 3 || !res.Executed || res.Val != 2 {
		t.Fatalf("swap resolution = %+v", res)
	}

	if err := g.PrepCAS(0, 3, 4); err != nil {
		t.Fatal(err)
	}
	if ok, w := g.ExecCAS(0); !ok || w != 3 {
		t.Fatalf("cas exec = (%v, %d), want success witnessing 3", ok, w)
	}
	res = g.Resolve(0)
	if res.Op != OpCAS || res.Expect != 3 || res.Arg != 4 || !res.Executed || res.Val != 1 || res.Val2 != 3 {
		t.Fatalf("successful cas resolution = %+v", res)
	}

	if err := g.PrepCAS(0, 99, 5); err != nil {
		t.Fatal(err)
	}
	if ok, w := g.ExecCAS(0); ok || w != 4 {
		t.Fatalf("failing cas exec = (%v, %d), want failure witnessing 4", ok, w)
	}
	res = g.Resolve(0)
	if res.Op != OpCAS || !res.Executed || res.Val != 0 || res.Val2 != 4 {
		t.Fatalf("failed cas resolution = %+v", res)
	}
}

// TestCrashSweepConformance is the register's Theorem 1 analogue: crash
// at every primitive memory step of a detectable write; swap; cas(hit);
// cas(miss); read workload under every adversary, recover, resolve, read
// the final value non-detectably — and check the whole history against
// D⟨swap-register⟩ under strict linearizability.
func TestCrashSweepConformance(t *testing.T) {
	for ai, adv := range pmem.Adversaries(91) {
		swept := 0
		for step := uint64(1); ; step++ {
			g, h := newTestReg(t, 1, 5)
			rec := check.NewRecorder()
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				rec.Begin(0, spec.PrepOp(spec.Write(10)))
				if err := g.PrepWrite(0, 10); err != nil {
					return
				}
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.Write(10)))
				g.ExecWrite(0)
				rec.End(0, spec.AckResp())

				rec.Begin(0, spec.PrepOp(spec.Swap(20)))
				if err := g.PrepSwap(0, 20); err != nil {
					return
				}
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.Swap(20)))
				rec.End(0, spec.ValResp(g.ExecSwap(0)))

				rec.Begin(0, spec.PrepOp(spec.CAS(20, 30)))
				if err := g.PrepCAS(0, 20, 30); err != nil {
					return
				}
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.CAS(20, 30)))
				ok, w := g.ExecCAS(0)
				rec.End(0, casResp(ok, w))

				rec.Begin(0, spec.PrepOp(spec.CAS(99, 40)))
				if err := g.PrepCAS(0, 99, 40); err != nil {
					return
				}
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.CAS(99, 40)))
				ok, w = g.ExecCAS(0)
				rec.End(0, casResp(ok, w))

				rec.Begin(0, spec.PrepOp(spec.Read()))
				g.PrepRead(0)
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.Read()))
				rec.End(0, spec.ValResp(g.ExecRead(0)))
			})
			if !h.Crashed() {
				if swept == 0 {
					t.Fatal("workload completed before the first crash point")
				}
				break
			}
			swept++
			rec.CrashAll()
			h.Crash(adv)
			g.Recover()
			rec.Begin(0, spec.ResolveOp())
			rec.End(0, g.Resolve(0).Resp())
			rec.Begin(0, spec.Read())
			rec.End(0, spec.ValResp(g.Read(0)))

			hist := rec.History()
			d := spec.Detectable(spec.NewSwap(5), 1)
			if r := check.StrictlyLinearizable(d, hist); !r.OK {
				t.Fatalf("adv %d step %d: register history not strictly linearizable:\n%s",
					ai, step, check.FormatHistory(hist))
			}
		}
	}
}

func casResp(ok bool, w uint64) spec.Resp {
	if ok {
		return spec.ValResp2(1, w)
	}
	return spec.ValResp2(0, w)
}

// TestDoubleRecoverIdempotent crashes at every step and runs Recover
// twice: the second run must leave the same resolution, the same value
// and the same pool occupancy — the idempotence the Object contract
// promises for a crash during recovery itself.
func TestDoubleRecoverIdempotent(t *testing.T) {
	for ai, adv := range pmem.Adversaries(17) {
		for step := uint64(1); ; step++ {
			g, h := newTestReg(t, 1, 5)
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				if err := g.PrepSwap(0, 10); err != nil {
					return
				}
				g.ExecSwap(0)
				if err := g.PrepSwap(0, 20); err != nil {
					return
				}
				g.ExecSwap(0)
			})
			if !h.Crashed() {
				break
			}
			h.Crash(adv)
			g.Recover()
			res1 := g.Resolve(0)
			v1 := g.Value()
			free1 := g.FreeNodes()
			g.Recover()
			res2 := g.Resolve(0)
			v2 := g.Value()
			free2 := g.FreeNodes()
			if res1 != res2 || v1 != v2 || free1 != free2 {
				t.Fatalf("adv %d step %d: second Recover changed state: (%+v, %d, %d) → (%+v, %d, %d)",
					ai, step, res1, v1, free1, res2, v2, free2)
			}
		}
	}
}

// TestAbandonPrepCrashSweep injects a crash at every step of the
// abandon-then-re-prepare sequence
//
//	PrepSwap(99); AbandonPrep; PrepSwap(7); ExecSwap
//
// under every adversary: after recovery the withdrawn swap must never be
// resurrected nor reported executed, and the value 99 must never be
// observable in the register.
func TestAbandonPrepCrashSweep(t *testing.T) {
	for ai, adv := range append(pmem.Adversaries(3),
		pmem.NewBiasedFates(13, 0.25), pmem.NewBiasedFates(14, 0.75)) {
		swept := 0
		for step := uint64(1); ; step++ {
			g, h := newTestReg(t, 1, 5)
			phase := 0
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				if err := g.PrepSwap(0, 99); err != nil {
					t.Errorf("adv %d step %d: PrepSwap(99): %v", ai, step, err)
					return
				}
				phase = 1
				g.AbandonPrep(0)
				phase = 2
				if err := g.PrepSwap(0, 7); err != nil {
					t.Errorf("adv %d step %d: PrepSwap(7): %v", ai, step, err)
					return
				}
				phase = 3
				g.ExecSwap(0)
				phase = 4
			})
			if !h.Crashed() {
				if swept == 0 {
					t.Fatal("workload completed before the first crash point")
				}
				break
			}
			swept++
			h.Crash(adv)
			g.Recover()
			res := g.Resolve(0)

			if res.Op == OpSwap && res.Arg == 99 {
				if res.Executed {
					t.Fatalf("adv %d step %d: abandoned swap(99) resolved as executed", ai, step)
				}
				if phase >= 2 {
					t.Fatalf("adv %d step %d: abandoned swap(99) resurrected after abandon returned (phase %d)",
						ai, step, phase)
				}
			}
			if phase >= 2 && !(res.Op == OpNone || (res.Op == OpSwap && res.Arg == 7)) {
				t.Fatalf("adv %d step %d: resolve after abandon (phase %d) = %+v",
					ai, step, phase, res)
			}
			if v := g.Read(0); v == 99 {
				t.Fatalf("adv %d step %d: abandoned value 99 reached the register", ai, step)
			} else if v != 5 && v != 7 {
				t.Fatalf("adv %d step %d: register holds %d, want 5 or 7", ai, step, v)
			}

			// The recovered register must still be fully operational.
			if err := g.Write(0, 500); err != nil {
				t.Fatal(err)
			}
			if v := g.Read(0); v != 500 {
				t.Fatalf("adv %d step %d: post-recovery register broken: %d", ai, step, v)
			}
		}
	}
}

// TestConcurrentSwapConservation runs concurrent detectable swaps with
// globally unique values and audits the displacement chain: no value may
// be displaced (returned) twice — across completed returns and crash
// resolutions — and the final value must be one of the written values or
// the initial one.
func TestConcurrentSwapConservation(t *testing.T) {
	const threads = 3
	for trial := 0; trial < 30; trial++ {
		g, h := newTestReg(t, threads, 1)
		h.ArmCrash(uint64(60 + trial*37))
		var wg sync.WaitGroup
		var mu sync.Mutex
		displaced := map[uint64]int{}
		last := make([]uint64, threads) // value of the thread's in-flight swap
		done := make([]bool, threads)   // whether that swap's return was recorded
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				pmem.RunToCrash(func() {
					for i := 0; ; i++ {
						v := uint64(tid+2)<<32 | uint64(i+1)
						mu.Lock()
						last[tid], done[tid] = v, false
						mu.Unlock()
						if err := g.PrepSwap(tid, v); err != nil {
							t.Errorf("prep: %v", err)
							return
						}
						prev := g.ExecSwap(tid)
						mu.Lock()
						displaced[prev]++
						done[tid] = true
						mu.Unlock()
					}
				})
			}(tid)
		}
		wg.Wait()
		h.Crash(pmem.NewRandomFates(int64(trial)))
		g.Recover()
		for tid := 0; tid < threads; tid++ {
			res := g.Resolve(tid)
			if res.Op != OpSwap {
				continue
			}
			if res.Arg == last[tid] && !done[tid] && res.Executed {
				// The in-flight swap's displacement was only recorded by
				// the recovery settlement.
				displaced[res.Val]++
			}
		}
		for v, n := range displaced {
			if n > 1 {
				t.Fatalf("trial %d: value %d displaced %d times", trial, v, n)
			}
		}
		final := g.Value()
		if final != 1 && final>>32 < 2 {
			t.Fatalf("trial %d: final value %d was never written", trial, final)
		}
		if displaced[final] != 0 {
			t.Fatalf("trial %d: final value %d was also displaced", trial, final)
		}
	}
}

// TestSpaceBound is the per-process space accounting check against the
// space-bounds line of work: a detectable register over n processes
// needs only O(n) nodes in steady state — one live value node, at most
// one pinned node per process for its latest resolution, plus the
// reclamation pipeline's slack. After a long workload and a reclamation
// flush, the number of unavailable blocks must stay within that bound
// regardless of the operation count.
func TestSpaceBound(t *testing.T) {
	const threads = 4
	g, h := newTestReg(t, threads, 0)
	_ = h
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := g.PrepSwap(tid, uint64(tid)<<32|uint64(i)); err != nil {
					t.Errorf("prep: %v", err)
					return
				}
				g.ExecSwap(tid)
			}
		}(tid)
	}
	wg.Wait()
	g.Quiesce()
	inUse := g.Capacity() - g.FreeNodes()
	// One node per thread pinned by its last resolution, the live node,
	// and at most one parked node per thread awaiting unpinning.
	if bound := 2*threads + 1; inUse > bound {
		t.Fatalf("in-use nodes = %d after quiesce, want ≤ %d (O(threads), not O(ops))",
			inUse, bound)
	}
}

// TestAttachResumes builds a register, re-attaches a second handle to
// the same heap image, recovers it and resumes operations.
func TestAttachResumes(t *testing.T) {
	g, h := newTestReg(t, 2, 5)
	if err := g.Write(0, 42); err != nil {
		t.Fatal(err)
	}
	if err := g.PrepSwap(1, 50); err != nil {
		t.Fatal(err)
	}
	g.ExecSwap(1)

	h.Crash(pmem.KeepAll{})
	g2, err := Attach(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2.Recover()
	res := g2.Resolve(1)
	if res.Op != OpSwap || !res.Executed || res.Val != 42 {
		t.Fatalf("re-attached resolution = %+v, want executed swap displacing 42", res)
	}
	if v := g2.Read(0); v != 50 {
		t.Fatalf("re-attached read = %d, want 50", v)
	}
}
