// Package stack extends the paper's approach to a second data structure:
// a lock-free, strictly linearizable, detectable LIFO stack (the "DSS
// stack"), built the same way the DSS queue is built from the MS queue —
// here from Treiber's stack plus a durable claim protocol.
//
// The paper's conclusion hopes the DSS "opens a new avenue for both
// rigorous analysis and practical implementation of recoverable
// concurrent objects"; this package is that avenue exercised once more:
// per-thread detectability words X[i] hold tagged node pointers, pops
// claim their node by CAS-ing a popThreadID field before the top pointer
// swings (so claims — the linearization points — are what recovery and
// resolve read), and a Figure 6-style recovery completes tags and
// reclaims nodes.
package stack

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/ebr"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// Node field offsets (one line per node).
const (
	offValue  = 0
	offNext   = 1
	offPopTID = 2
	nodeWords = pmem.WordsPerLine
)

// X-word tag bits, mirroring the DSS queue's encoding.
const (
	pushPrepTag  = uint64(1) << 63
	pushComplTag = uint64(1) << 62
	popPrepTag   = uint64(1) << 61
	emptyTag     = uint64(1) << 60
	tagMask      = pushPrepTag | pushComplTag | popPrepTag | emptyTag
)

// tidNone marks an unclaimed node; ndMark distinguishes non-detectable
// claims (Section 3.2's trick, applied to pops).
const (
	tidNone = ^uint64(0)
	ndMark  = uint64(1) << 58
)

// Top-pointer mark bits. A pop locks its node into the top pointer itself
// — CAS(top, t, t|popMark|tid) — so the linearization point is a single
// CAS on top (claiming through a node field alone would let a claim land
// mid-stack under a concurrent push). While the mark is set, pushes and
// pops help complete the marked pop, which keeps the stack lock-free.
const (
	popMarkBit = uint64(1) << 63
	ndMarkBit  = uint64(1) << 62
	markTIDPos = 44
	markBits   = popMarkBit | ndMarkBit | (uint64(1<<16)-1)<<markTIDPos
)

// ErrNoNodes is returned when the node pool is exhausted.
var ErrNoNodes = errors.New("stack: node pool exhausted")

// Config parameterizes a DSS stack.
type Config struct {
	// Threads is the number of worker threads (tids 0..Threads-1).
	Threads int
	// NodesPerThread sizes each thread's pre-allocated pool.
	NodesPerThread int
	// ExtraNodes adds shared spare nodes.
	ExtraNodes int
}

// Stack is a detectable recoverable LIFO stack.
type Stack struct {
	h       *pmem.Heap
	pool    *pmem.Pool
	rec     *ebr.Collector
	top     pmem.Addr // address of the top pointer word
	xBase   pmem.Addr
	threads int
}

// New allocates a DSS stack on h, registering its metadata in heap root
// slot rootSlot.
func New(h *pmem.Heap, rootSlot int, cfg Config) (*Stack, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("stack: need at least one thread, got %d", cfg.Threads)
	}
	if cfg.NodesPerThread < 0 || cfg.ExtraNodes < 0 {
		return nil, fmt.Errorf("stack: negative pool sizing")
	}
	meta, err := h.Alloc((1 + cfg.Threads) * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("stack: metadata: %w", err)
	}
	s := &Stack{
		h:       h,
		top:     meta,
		xBase:   meta + pmem.WordsPerLine,
		threads: cfg.Threads,
	}
	s.pool, err = pmem.NewPool(h, pmem.PoolConfig{
		Threads:         cfg.Threads,
		BlocksPerThread: cfg.NodesPerThread,
		ExtraBlocks:     cfg.ExtraNodes + 1,
		BlockWords:      nodeWords,
		Pinned:          s.pinned,
	})
	if err != nil {
		return nil, fmt.Errorf("stack: node pool: %w", err)
	}
	s.rec, err = ebr.New(cfg.Threads, func(tid int, a pmem.Addr) { s.pool.Free(tid, a) })
	if err != nil {
		return nil, fmt.Errorf("stack: reclamation: %w", err)
	}
	// Reuse fence: persist top before any retired node becomes reusable,
	// so recovery's scan from the persisted top never walks reused nodes.
	s.rec.SetDrainHook(func(int) { s.h.Persist(s.top) })

	s.h.Store(s.top, 0)
	s.h.Persist(s.top)
	for i := 0; i < cfg.Threads; i++ {
		s.h.Store(s.xAddr(i), 0)
	}
	s.h.PersistRange(s.xAddr(0), cfg.Threads*pmem.WordsPerLine)
	h.SetRoot(rootSlot, meta)
	return s, nil
}

// Threads reports the stack's thread count.
func (s *Stack) Threads() int { return s.threads }

func (s *Stack) xAddr(tid int) pmem.Addr {
	return s.xBase + pmem.Addr(tid*pmem.WordsPerLine)
}

func ptrOf(x uint64) pmem.Addr { return pmem.Addr(x &^ tagMask &^ ndMark) }

func claimed(w uint64) bool { return w != tidNone }

// pinned vetoes recycling of any node a detectability word references in
// either the coherent or the persisted view (push node, or pop candidate).
// The scan is simulator-side reclamation bookkeeping, so it reads through
// LoadVolatile (uncharged; see core.Queue.pinned).
func (s *Stack) pinned(a pmem.Addr) bool {
	tracked := s.h.Mode() == pmem.Tracked
	for i := 0; i < s.threads; i++ {
		if x := s.h.LoadVolatile(s.xAddr(i)); ptrOf(x) == a && x&tagMask != 0 {
			return true
		}
		if tracked {
			if px := s.h.PersistedLoad(s.xAddr(i)); ptrOf(px) == a && px&tagMask != 0 {
				return true
			}
		}
	}
	return false
}

func (s *Stack) allocNode(tid int) (pmem.Addr, bool) {
	for attempt := 0; attempt < 128; attempt++ {
		if a, ok := s.pool.Alloc(tid); ok {
			return a, true
		}
		s.rec.Collect(tid)
		runtime.Gosched()
	}
	return 0, false
}

func (s *Stack) initNode(node pmem.Addr, v uint64) {
	s.h.Store(node+offValue, v)
	s.h.Store(node+offNext, 0)
	s.h.Store(node+offPopTID, tidNone)
	s.h.Persist(node)
}

// PrepPush declares the detectable intent to push v (Axiom 1). Like the
// queue's prep-enqueue, it reclaims the node of a previous prepared push
// that verifiably never took effect.
func (s *Stack) PrepPush(tid int, v uint64) error {
	oldX := s.h.Load(s.xAddr(tid))
	node, ok := s.allocNode(tid)
	if !ok {
		return ErrNoNodes
	}
	s.initNode(node, v)
	s.h.Store(s.xAddr(tid), uint64(node)|pushPrepTag)
	s.h.Persist(s.xAddr(tid))
	if oldX&pushPrepTag != 0 && oldX&pushComplTag == 0 {
		if old := ptrOf(oldX); old != 0 && old != node {
			s.pool.Free(tid, old)
		}
	}
	return nil
}

// ExecPush links the prepared node at the top (Axiom 2).
func (s *Stack) ExecPush(tid int) {
	x := s.h.Load(s.xAddr(tid))
	if x&pushPrepTag == 0 || x&pushComplTag != 0 {
		return
	}
	node := ptrOf(x)
	s.rec.Enter(tid)
	defer s.rec.Exit(tid)
	s.push(tid, node, true)
}

// Push is the non-detectable push (Axiom 4).
func (s *Stack) Push(tid int, v uint64) error {
	node, ok := s.allocNode(tid)
	if !ok {
		return ErrNoNodes
	}
	s.initNode(node, v)
	s.rec.Enter(tid)
	defer s.rec.Exit(tid)
	s.push(tid, node, false)
	return nil
}

func (s *Stack) push(tid int, node pmem.Addr, detect bool) {
	for {
		t := s.h.Load(s.top)
		if t&popMarkBit != 0 {
			s.helpPop(tid, t)
			continue
		}
		s.h.Store(node+offNext, t)
		s.h.Persist(node + offNext)
		if s.h.CompareAndSwap(s.top, t, uint64(node)) {
			s.h.Persist(s.top)
			if detect {
				s.h.Store(s.xAddr(tid), s.h.Load(s.xAddr(tid))|pushComplTag)
				s.h.Persist(s.xAddr(tid))
			}
			return
		}
	}
}

// PrepPop declares the detectable intent to pop (Axiom 1).
func (s *Stack) PrepPop(tid int) {
	s.h.Store(s.xAddr(tid), popPrepTag)
	s.h.Persist(s.xAddr(tid))
}

// ExecPop removes the top value (Axiom 2); ok is false when the stack is
// empty (the EMPTY response).
func (s *Stack) ExecPop(tid int) (uint64, bool) {
	s.rec.Enter(tid)
	defer s.rec.Exit(tid)
	return s.pop(tid, true)
}

// Pop is the non-detectable pop (Axiom 4).
func (s *Stack) Pop(tid int) (uint64, bool) {
	s.rec.Enter(tid)
	defer s.rec.Exit(tid)
	return s.pop(tid, false)
}

func (s *Stack) pop(tid int, detect bool) (uint64, bool) {
	for {
		raw := s.h.Load(s.top)
		if raw&popMarkBit != 0 {
			s.helpPop(tid, raw)
			continue
		}
		t := pmem.Addr(raw)
		if t == 0 {
			if detect {
				s.h.Store(s.xAddr(tid), s.h.Load(s.xAddr(tid))|emptyTag)
				s.h.Persist(s.xAddr(tid))
			}
			return 0, false
		}
		// Record the candidate for detectability, then lock it into the
		// top pointer. The CAS below is the pop's linearization point;
		// the persisted claim written during completion is what resolve
		// and recovery read back through X[tid].
		if detect {
			s.h.Store(s.xAddr(tid), uint64(t)|popPrepTag)
			s.h.Persist(s.xAddr(tid))
		}
		marked := uint64(t) | popMarkBit | uint64(tid)<<markTIDPos
		if !detect {
			marked |= ndMarkBit
		}
		if s.h.CompareAndSwap(s.top, raw, marked) {
			v := s.h.Load(t + offValue)
			s.completePop(tid, marked)
			return v, true
		}
	}
}

// completePop finishes a marked pop: persist the mark, write and persist
// the node's durable claim, swing top to the successor, persist. Any
// thread may run it (helping); all its writes are idempotent for a given
// marked value.
func (s *Stack) completePop(tid int, marked uint64) {
	t := pmem.Addr(marked &^ markBits)
	owner := marked >> markTIDPos & (1<<16 - 1)
	claim := owner
	if marked&ndMarkBit != 0 {
		claim |= ndMark
	}
	s.h.Persist(s.top)
	s.h.Store(t+offPopTID, claim)
	s.h.Persist(t + offPopTID)
	next := s.h.Load(t + offNext)
	if s.h.CompareAndSwap(s.top, marked, next) {
		s.h.Persist(s.top)
		s.rec.Retire(tid, t)
	}
}

// helpPop completes another thread's marked pop so this thread can make
// progress.
func (s *Stack) helpPop(tid int, raw uint64) {
	s.completePop(tid, raw)
}

// Resolution is the stack's decoded (A[p], R[p]) pair.
type Resolution struct {
	Op       OpName
	Arg      uint64
	Executed bool
	Val      uint64
	Empty    bool
}

// OpName identifies a stack operation in a Resolution.
type OpName int

const (
	// OpNone means no operation was prepared.
	OpNone OpName = iota + 1
	// OpPush is a prepared push.
	OpPush
	// OpPop is a prepared pop.
	OpPop
)

// Resolve reports the most recently prepared operation and its outcome
// (Axiom 3). Total and idempotent.
func (s *Stack) Resolve(tid int) Resolution {
	x := s.h.Load(s.xAddr(tid))
	switch {
	case x&pushPrepTag != 0:
		node := ptrOf(x)
		return Resolution{
			Op:       OpPush,
			Arg:      s.h.Load(node + offValue),
			Executed: x&pushComplTag != 0,
		}
	case x&popPrepTag != 0:
		switch {
		case x == popPrepTag:
			return Resolution{Op: OpPop}
		case x == popPrepTag|emptyTag:
			return Resolution{Op: OpPop, Executed: true, Empty: true}
		default:
			t := ptrOf(x)
			if s.h.Load(t+offPopTID) == uint64(tid) {
				return Resolution{Op: OpPop, Executed: true, Val: s.h.Load(t + offValue)}
			}
			return Resolution{Op: OpPop}
		}
	default:
		return Resolution{Op: OpNone}
	}
}

// Resp converts the resolution to the spec package's resolve response for
// conformance checking against D⟨stack⟩.
func (r Resolution) Resp() spec.Resp {
	switch r.Op {
	case OpPush:
		inner := spec.BottomResp()
		if r.Executed {
			inner = spec.AckResp()
		}
		return spec.PairResp(true, spec.Push(r.Arg), inner)
	case OpPop:
		inner := spec.BottomResp()
		if r.Executed {
			if r.Empty {
				inner = spec.EmptyResp()
			} else {
				inner = spec.ValResp(r.Val)
			}
		}
		return spec.PairResp(true, spec.Pop(), inner)
	default:
		return spec.PairResp(false, spec.Op{}, spec.BottomResp())
	}
}

// AbandonPrep withdraws tid's currently prepared-but-unexecuted
// operation, clearing X[tid] (persisted) and returning the node of an
// unlinked prepared push to the pool — the withdrawal discipline a
// multi-shard front-end needs when a process re-prepares on another
// shard (see core.Queue.AbandonPrep). Calling it while the prepared
// operation has already executed, or concurrently with the owner's own
// prep/exec, violates the per-process (A, R) contract; after it returns,
// Resolve(tid) reports OpNone.
func (s *Stack) AbandonPrep(tid int) {
	x := s.h.Load(s.xAddr(tid))
	if x == 0 {
		return
	}
	// Clear and persist X first so the node is no longer pinned by the
	// recycling veto and no crash can resurrect the abandoned intent.
	s.h.Store(s.xAddr(tid), 0)
	s.h.Persist(s.xAddr(tid))
	if x&pushPrepTag != 0 && x&pushComplTag == 0 {
		if node := ptrOf(x); node != 0 {
			// The prepared push never linked its node: nothing else
			// references it, so it can return to the pool directly.
			s.pool.Free(tid, node)
		}
	}
}

// Recover is the stack's centralized recovery: complete a pop whose mark
// survived in the top pointer, complete push tags, and rebuild the
// volatile pool.
//
// Contract (shared by core.Queue.Recover and cwe.Queue.Recover): it must
// run single-threaded, after Heap.Crash and before any thread resumes
// operations, and it is idempotent — running it again (e.g. after a
// crash during recovery itself) reproduces the same state.
func (s *Stack) Recover() {
	// Pop completion: a persisted mark means the pop linearized before
	// the crash; write its claim and unlink, exactly as a helper would.
	raw := s.h.Load(s.top)
	if raw&popMarkBit != 0 {
		t := pmem.Addr(raw &^ markBits)
		claim := raw >> markTIDPos & (1<<16 - 1)
		if raw&ndMarkBit != 0 {
			claim |= ndMark
		}
		s.h.Store(t+offPopTID, claim)
		s.h.Persist(t + offPopTID)
		s.h.Store(s.top, s.h.Load(t+offNext))
		s.h.Persist(s.top)
	}

	oldTop := pmem.Addr(s.h.Load(s.top))
	reachable := map[pmem.Addr]bool{}
	for n := oldTop; n != 0; n = pmem.Addr(s.h.Load(n + offNext)) {
		reachable[n] = true
	}
	newTop := oldTop

	// Push completion (Figure 6's X repair, stack edition).
	for i := 0; i < s.threads; i++ {
		x := s.h.Load(s.xAddr(i))
		if x&pushPrepTag == 0 || x&pushComplTag != 0 {
			continue
		}
		d := ptrOf(x)
		if d == 0 {
			continue
		}
		if reachable[d] || claimed(s.h.Load(d+offPopTID)) {
			s.h.Store(s.xAddr(i), x|pushComplTag)
			s.h.Persist(s.xAddr(i))
		}
	}

	s.rec.Reset()
	live := map[pmem.Addr]bool{}
	for n := newTop; n != 0; n = pmem.Addr(s.h.Load(n + offNext)) {
		live[n] = true
	}
	for i := 0; i < s.threads; i++ {
		if p := ptrOf(s.h.Load(s.xAddr(i))); p != 0 {
			live[p] = true
		}
	}
	s.pool.Sweep(func(a pmem.Addr) bool { return live[a] })
}

// ResetVolatile re-initializes the stack's volatile companions (EBR)
// without touching persistent state. It must be called once, before
// threads resume, by any single caller (see core.Queue.ResetVolatile).
func (s *Stack) ResetVolatile() {
	s.rec.Reset()
}
