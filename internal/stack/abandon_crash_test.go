package stack

import (
	"testing"

	"repro/internal/pmem"
)

// abandonSweepAdversaries mirrors the queue's abandon sweep suite: the
// canonical dirty-line set plus biased schedules, under which most lines
// share one fate but a few defect.
func abandonSweepAdversaries(seed int64) []pmem.Adversary {
	return append(pmem.Adversaries(seed),
		pmem.NewBiasedFates(seed+10, 0.25),
		pmem.NewBiasedFates(seed+11, 0.75))
}

func mustPush(t *testing.T, s *Stack, tid int, v uint64) {
	t.Helper()
	if err := s.Push(tid, v); err != nil {
		t.Fatalf("Push(%d): %v", v, err)
	}
}

// TestAbandonPrepCrashSweepPush injects a crash at every primitive memory
// step of the abandon-then-re-prepare sequence
//
//	PrepPush(99); AbandonPrep; PrepPush(7); ExecPush; PrepPop; ExecPop
//
// under every adversary, then recovers and checks that the withdrawn
// prepared push can never be resurrected: once AbandonPrep has returned,
// Resolve never reports the abandoned operation again (in any state), and
// the value 99 never reaches the stack — while the re-prepared
// operation's resolution stays consistent with the stack's contents. This
// is the stack edition of the queue's exhaustive abandon sweep, the
// withdrawal discipline the sharded front-end leans on when a process
// re-prepares on another shard.
func TestAbandonPrepCrashSweepPush(t *testing.T) {
	for ai, adv := range abandonSweepAdversaries(1) {
		swept := 0
		for step := uint64(1); ; step++ {
			s, h := newTestStack(t, 1)
			phase := 0
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				if err := s.PrepPush(0, 99); err != nil {
					t.Errorf("adv %d step %d: PrepPush(99): %v", ai, step, err)
					return
				}
				phase = 1
				s.AbandonPrep(0)
				phase = 2
				if err := s.PrepPush(0, 7); err != nil {
					t.Errorf("adv %d step %d: PrepPush(7): %v", ai, step, err)
					return
				}
				phase = 3
				s.ExecPush(0)
				phase = 4
				s.PrepPop(0)
				phase = 5
				s.ExecPop(0)
				phase = 6
			})
			if !h.Crashed() {
				if swept == 0 {
					t.Fatal("workload completed before the first crash point")
				}
				break // swept past the workload's end
			}
			swept++
			h.Crash(adv)
			s.Recover()
			res := s.Resolve(0)

			// The abandoned prep must never be reported after AbandonPrep
			// returned, and must never be reported as executed at all.
			if res.Op == OpPush && res.Arg == 99 {
				if res.Executed {
					t.Fatalf("adv %d step %d: abandoned push(99) resolved as executed", ai, step)
				}
				if phase >= 2 {
					t.Fatalf("adv %d step %d: abandoned push(99) resurrected after abandon returned (phase %d)",
						ai, step, phase)
				}
			}
			// Once abandon returned, resolve may only report nothing or an
			// operation prepared afterwards: push(7) (a crash can land
			// inside PrepPush(7) after it persisted the new X), or — once
			// the workload reached PrepPop — the pop.
			if phase >= 2 {
				ok := res.Op == OpNone ||
					(res.Op == OpPush && res.Arg == 7) ||
					(res.Op == OpPop && phase >= 4)
				if !ok {
					t.Fatalf("adv %d step %d: resolve after abandon (phase %d) = %+v",
						ai, step, phase, res)
				}
			}

			drained := drainStack(t, s, 0)
			for _, v := range drained {
				if v == 99 {
					t.Fatalf("adv %d step %d: abandoned value 99 reached the stack", ai, step)
				}
			}

			// Conservation of the re-prepared value: its push's and pop's
			// effectiveness (from the phase reached and the resolution)
			// must match what the drain found.
			push7 := phase >= 4 || (res.Op == OpPush && res.Arg == 7 && res.Executed)
			pop7 := phase >= 6 || (res.Op == OpPop && res.Executed && !res.Empty && res.Val == 7)
			got7 := len(drained) == 1 && drained[0] == 7
			if len(drained) > 1 {
				t.Fatalf("adv %d step %d: drained %v, at most one value ever pushed", ai, step, drained)
			}
			switch {
			case pop7 && got7:
				t.Fatalf("adv %d step %d: value 7 popped by the workload but still drained", ai, step)
			case pop7 && !push7:
				t.Fatalf("adv %d step %d: value 7 popped but its push never took effect", ai, step)
			case !pop7 && push7 && !got7:
				t.Fatalf("adv %d step %d: push(7) effective (phase %d, res %+v) but drain found %v",
					ai, step, phase, res, drained)
			case !pop7 && !push7 && len(drained) != 0:
				t.Fatalf("adv %d step %d: nothing effective but drained %v", ai, step, drained)
			}

			// The recovered stack must still be fully operational.
			mustPush(t, s, 0, 500)
			if after := drainStack(t, s, 0); len(after) != 1 || after[0] != 500 {
				t.Fatalf("adv %d step %d: post-recovery stack broken: %v", ai, step, after)
			}
		}
	}
}

// TestAbandonPrepCrashSweepPop is the pop-side sweep: a prepared pop is
// withdrawn, a push is prepared in its place, and a crash at every step
// must never let recovery resurrect the withdrawn pop after AbandonPrep
// returned.
func TestAbandonPrepCrashSweepPop(t *testing.T) {
	for ai, adv := range abandonSweepAdversaries(2) {
		swept := 0
		for step := uint64(1); ; step++ {
			s, h := newTestStack(t, 1)
			// A committed backlog gives the withdrawn pop something to
			// observe; 12 sits on top of 11.
			mustPush(t, s, 0, 11)
			mustPush(t, s, 0, 12)
			phase := 0
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				s.PrepPop(0)
				phase = 1
				s.AbandonPrep(0)
				phase = 2
				if err := s.PrepPush(0, 7); err != nil {
					t.Errorf("adv %d step %d: PrepPush(7): %v", ai, step, err)
					return
				}
				phase = 3
				s.ExecPush(0)
				phase = 4
			})
			if !h.Crashed() {
				if swept == 0 {
					t.Fatal("workload completed before the first crash point")
				}
				break
			}
			swept++
			h.Crash(adv)
			s.Recover()
			res := s.Resolve(0)

			if res.Op == OpPop {
				if res.Executed {
					t.Fatalf("adv %d step %d: withdrawn pop resolved as executed (%+v)", ai, step, res)
				}
				if phase >= 2 {
					t.Fatalf("adv %d step %d: withdrawn pop resurrected after abandon returned (phase %d)",
						ai, step, phase)
				}
			}
			if phase >= 2 && !(res.Op == OpNone || (res.Op == OpPush && res.Arg == 7)) {
				t.Fatalf("adv %d step %d: resolve after abandon = %+v, want OpNone or push(7)",
					ai, step, res)
			}

			// The prepared pop never executed, so the backlog must be
			// intact, with 7 on top of it iff the push took effect.
			drained := drainStack(t, s, 0)
			push7 := phase >= 4 || (res.Op == OpPush && res.Arg == 7 && res.Executed)
			want := []uint64{12, 11}
			if push7 {
				want = []uint64{7, 12, 11}
			}
			if len(drained) != len(want) {
				t.Fatalf("adv %d step %d: drained %v, want %v (phase %d, res %+v)",
					ai, step, drained, want, phase, res)
			}
			for i := range want {
				if drained[i] != want[i] {
					t.Fatalf("adv %d step %d: drained %v, want %v", ai, step, drained, want)
				}
			}
		}
	}
}
