package stack

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/pmem"
	"repro/internal/spec"
)

func newTestStack(t *testing.T, threads int) (*Stack, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(h, 0, Config{Threads: threads, NodesPerThread: 64, ExtraNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s, h
}

func drainStack(t *testing.T, s *Stack, tid int) []uint64 {
	t.Helper()
	var out []uint64
	for i := 0; i < 100_000; i++ {
		v, ok := s.Pop(tid)
		if !ok {
			return out
		}
		out = append(out, v)
	}
	t.Fatal("drain did not terminate")
	return nil
}

func TestNewValidation(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 12, Mode: pmem.Tracked})
	if _, err := New(h, 0, Config{Threads: 0}); err == nil {
		t.Fatal("accepted zero threads")
	}
	if _, err := New(h, 0, Config{Threads: 1, NodesPerThread: -1}); err == nil {
		t.Fatal("accepted negative sizing")
	}
}

func TestLIFOOrder(t *testing.T) {
	s, _ := newTestStack(t, 2)
	for v := uint64(1); v <= 5; v++ {
		if err := s.Push(0, v); err != nil {
			t.Fatal(err)
		}
	}
	got := drainStack(t, s, 1)
	want := []uint64{5, 4, 3, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestPopEmpty(t *testing.T) {
	s, _ := newTestStack(t, 1)
	if v, ok := s.Pop(0); ok {
		t.Fatalf("pop on empty = (%d,true)", v)
	}
	if err := s.Push(0, 9); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Pop(0); !ok || v != 9 {
		t.Fatalf("pop = (%d,%v)", v, ok)
	}
	if _, ok := s.Pop(0); ok {
		t.Fatal("stack not empty after drain")
	}
}

func TestDetectableLifecycle(t *testing.T) {
	s, _ := newTestStack(t, 1)
	if err := s.PrepPush(0, 7); err != nil {
		t.Fatal(err)
	}
	if res := s.Resolve(0); res.Op != OpPush || res.Executed || res.Arg != 7 {
		t.Fatalf("resolve after prep-push = %+v", res)
	}
	s.ExecPush(0)
	if res := s.Resolve(0); res.Op != OpPush || !res.Executed || res.Arg != 7 {
		t.Fatalf("resolve after exec-push = %+v", res)
	}
	s.PrepPop(0)
	if res := s.Resolve(0); res.Op != OpPop || res.Executed {
		t.Fatalf("resolve after prep-pop = %+v", res)
	}
	if v, ok := s.ExecPop(0); !ok || v != 7 {
		t.Fatalf("ExecPop = (%d,%v)", v, ok)
	}
	if res := s.Resolve(0); res.Op != OpPop || !res.Executed || res.Val != 7 || res.Empty {
		t.Fatalf("resolve after exec-pop = %+v", res)
	}
	s.PrepPop(0)
	if _, ok := s.ExecPop(0); ok {
		t.Fatal("pop on empty succeeded")
	}
	if res := s.Resolve(0); res.Op != OpPop || !res.Executed || !res.Empty {
		t.Fatalf("resolve after empty pop = %+v", res)
	}
}

func TestExecPushTwiceIsNoop(t *testing.T) {
	s, _ := newTestStack(t, 1)
	if err := s.PrepPush(0, 4); err != nil {
		t.Fatal(err)
	}
	s.ExecPush(0)
	s.ExecPush(0)
	if got := drainStack(t, s, 0); len(got) != 1 || got[0] != 4 {
		t.Fatalf("drained %v, want [4]", got)
	}
}

func TestRePrepareReclaimsUnlinkedNode(t *testing.T) {
	s, _ := newTestStack(t, 1)
	before := s.pool.FreeCount()
	for i := 0; i < 50; i++ {
		if err := s.PrepPush(0, uint64(i)); err != nil {
			t.Fatalf("prep #%d: %v", i, err)
		}
	}
	if after := s.pool.FreeCount(); before-after > 2 {
		t.Fatalf("repeated prep leaked nodes: %d -> %d", before, after)
	}
}

func TestNodesRecycle(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 14, Mode: pmem.Tracked})
	s, err := New(h, 0, Config{Threads: 1, NodesPerThread: 8, ExtraNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		if err := s.Push(0, uint64(i)); err != nil {
			t.Fatalf("push #%d: %v", i, err)
		}
		if v, ok := s.Pop(0); !ok || v != uint64(i) {
			t.Fatalf("pop #%d = (%d,%v)", i, v, ok)
		}
	}
}

func TestErrNoNodes(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 12, Mode: pmem.Tracked})
	s, err := New(h, 0, Config{Threads: 1, NodesPerThread: 2, ExtraNodes: 0})
	if err != nil {
		t.Fatal(err)
	}
	var last error
	for i := 0; i < 10; i++ {
		if err := s.Push(0, uint64(i)); err != nil {
			last = err
			break
		}
	}
	if !errors.Is(last, ErrNoNodes) {
		t.Fatalf("exhaustion err = %v", last)
	}
}

func TestConcurrentConservation(t *testing.T) {
	const threads = 4
	const pairs = 400
	s, _ := newTestStack(t, threads)
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[uint64]int{}
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < pairs; i++ {
				v := uint64(tid+1)<<32 | uint64(i)
				if err := s.Push(tid, v); err != nil {
					t.Errorf("push: %v", err)
					return
				}
				if got, ok := s.Pop(tid); ok {
					mu.Lock()
					seen[got]++
					mu.Unlock()
				}
			}
		}(tid)
	}
	wg.Wait()
	for _, v := range drainStack(t, s, 0) {
		seen[v]++
	}
	if len(seen) != threads*pairs {
		t.Fatalf("saw %d distinct values, want %d", len(seen), threads*pairs)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d popped %d times", v, n)
		}
	}
}

func TestConcurrentDetectablePairs(t *testing.T) {
	const threads = 3
	const pairs = 200
	s, _ := newTestStack(t, threads)
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[uint64]int{}
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < pairs; i++ {
				v := uint64(tid+1)<<32 | uint64(i)
				if err := s.PrepPush(tid, v); err != nil {
					t.Errorf("prep: %v", err)
					return
				}
				s.ExecPush(tid)
				if res := s.Resolve(tid); res.Op != OpPush || !res.Executed || res.Arg != v {
					t.Errorf("bad push resolution %+v", res)
					return
				}
				s.PrepPop(tid)
				if got, ok := s.ExecPop(tid); ok {
					mu.Lock()
					seen[got]++
					mu.Unlock()
				}
			}
		}(tid)
	}
	wg.Wait()
	for _, v := range drainStack(t, s, 0) {
		seen[v]++
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d popped %d times", v, n)
		}
	}
	if len(seen) != threads*pairs {
		t.Fatalf("saw %d values, want %d", len(seen), threads*pairs)
	}
}

// TestCrashSweepConformance is the stack's Theorem 1 analogue: crash at
// every step of a detectable push;pop workload under every adversary,
// recover, resolve, drain — and check the history against D⟨stack⟩ under
// strict linearizability.
func TestCrashSweepConformance(t *testing.T) {
	for _, adv := range pmem.Adversaries(71) {
		for step := uint64(1); ; step++ {
			s, h := newTestStack(t, 1)
			if err := s.Push(0, 1); err != nil {
				t.Fatal(err)
			}
			rec := check.NewRecorder()
			rec.Begin(0, spec.Push(1))
			rec.End(0, spec.AckResp())
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				rec.Begin(0, spec.PrepOp(spec.Push(10)))
				if err := s.PrepPush(0, 10); err != nil {
					return
				}
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.Push(10)))
				s.ExecPush(0)
				rec.End(0, spec.AckResp())
				rec.Begin(0, spec.PrepOp(spec.Pop()))
				s.PrepPop(0)
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.Pop()))
				if got, ok := s.ExecPop(0); ok {
					rec.End(0, spec.ValResp(got))
				} else {
					rec.End(0, spec.EmptyResp())
				}
			})
			if !h.Crashed() {
				break
			}
			rec.CrashAll()
			h.Crash(adv)
			s.Recover()
			rec.Begin(0, spec.ResolveOp())
			rec.End(0, s.Resolve(0).Resp())
			for {
				rec.Begin(0, spec.Pop())
				v, ok := s.Pop(0)
				if ok {
					rec.End(0, spec.ValResp(v))
				} else {
					rec.End(0, spec.EmptyResp())
					break
				}
			}
			hist := rec.History()
			d := spec.Detectable(spec.NewStack(), 1)
			if r := check.StrictlyLinearizable(d, hist); !r.OK {
				t.Fatalf("step %d: stack history not strictly linearizable:\n%s",
					step, check.FormatHistory(hist))
			}
		}
	}
}

// TestConcurrentCrashConservation crashes randomized multi-threaded runs
// and audits exactly-once value conservation using the resolutions.
func TestConcurrentCrashConservation(t *testing.T) {
	const threads = 3
	for trial := 0; trial < 40; trial++ {
		s, h := newTestStack(t, threads)
		h.ArmCrash(uint64(40 + trial*29))
		var wg sync.WaitGroup
		var mu sync.Mutex
		popped := map[uint64]int{}
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				pmem.RunToCrash(func() {
					for i := 0; ; i++ {
						v := uint64(tid+1)<<32 | uint64(i+1)
						if err := s.PrepPush(tid, v); err != nil {
							t.Errorf("prep: %v", err)
							return
						}
						s.ExecPush(tid)
						s.PrepPop(tid)
						if got, ok := s.ExecPop(tid); ok {
							mu.Lock()
							popped[got]++
							mu.Unlock()
						}
					}
				})
			}(tid)
		}
		wg.Wait()
		h.Crash(pmem.NewRandomFates(int64(trial)))
		s.Recover()
		seen := map[uint64]int{}
		for v, n := range popped {
			seen[v] += n
		}
		inStack := map[uint64]bool{}
		for _, v := range drainStack(t, s, 0) {
			seen[v]++
			inStack[v] = true
		}
		for v, n := range seen {
			if n > 1 {
				t.Fatalf("trial %d: value %d appears %d times", trial, v, n)
			}
		}
		for tid := 0; tid < threads; tid++ {
			res := s.Resolve(tid)
			if res.Op == OpPop && res.Executed && !res.Empty && inStack[res.Val] {
				t.Fatalf("trial %d: pop of %d resolved executed but value still stacked", trial, res.Val)
			}
		}
	}
}

// TestRecoveryCompletesMarkedPop drives a crash into the marked-top window
// specifically and verifies recovery finishes the pop.
func TestRecoveryCompletesMarkedPop(t *testing.T) {
	for step := uint64(1); ; step++ {
		s, h := newTestStack(t, 1)
		if err := s.Push(0, 5); err != nil {
			t.Fatal(err)
		}
		h.ArmCrash(step)
		crashed := pmem.RunToCrash(func() {
			s.PrepPop(0)
			s.ExecPop(0)
		})
		if !crashed {
			return
		}
		h.Crash(pmem.KeepAll{})
		s.Recover()
		res := s.Resolve(0)
		rest := drainStack(t, s, 0)
		gone := len(rest) == 0
		executed := res.Op == OpPop && res.Executed && !res.Empty
		if executed != gone {
			t.Fatalf("step %d: resolution %+v but stack %v", step, res, rest)
		}
		if executed && res.Val != 5 {
			t.Fatalf("step %d: wrong popped value %d", step, res.Val)
		}
	}
}
