package spec

import (
	"testing"
	"testing/quick"
)

func TestStackLIFO(t *testing.T) {
	var s State = NewStack()
	var r Resp
	s, r = apply(t, s, Push(1), 0)
	if r.Kind != Ack {
		t.Fatalf("push resp = %v", r)
	}
	s, _ = apply(t, s, Push(2), 0)
	s, _ = apply(t, s, Push(3), 1)
	for _, want := range []uint64{3, 2, 1} {
		var resp Resp
		s, resp = apply(t, s, Pop(), 1)
		if resp != ValResp(want) {
			t.Fatalf("pop = %v, want %d", resp, want)
		}
	}
	_, r = apply(t, s, Pop(), 0)
	if r.Kind != Empty {
		t.Fatalf("pop on empty = %v", r)
	}
}

func TestStackRejectsForeignOps(t *testing.T) {
	st := NewStack()
	if _, _, ok := st.Apply(Enqueue(1), 0); ok {
		t.Fatal("stack accepted enqueue")
	}
	if _, _, ok := st.Apply(PrepOp(Push(1)), 0); ok {
		t.Fatal("plain stack accepted prep-push")
	}
}

func TestStackItemsIsACopy(t *testing.T) {
	s, _, _ := NewStack().Apply(Push(7), 0)
	st := s.(StackState)
	items := st.Items()
	items[0] = 99
	if st.Items()[0] != 7 {
		t.Fatal("Items exposed internal storage")
	}
}

func TestDetectableStackLifecycle(t *testing.T) {
	var s State = Detectable(NewStack(), 1)
	s, _ = apply(t, s, PrepOp(Push(5)), 0)
	s, r := apply(t, s, ExecOp(Push(5)), 0)
	if r.Kind != Ack {
		t.Fatalf("exec-push resp = %v", r)
	}
	_, r = apply(t, s, ResolveOp(), 0)
	if want := PairResp(true, Push(5), AckResp()); r != want {
		t.Fatalf("resolve = %v, want %v", r, want)
	}
	s, _ = apply(t, s, PrepOp(Pop()), 0)
	s, r = apply(t, s, ExecOp(Pop()), 0)
	if r != ValResp(5) {
		t.Fatalf("exec-pop resp = %v", r)
	}
	_, r = apply(t, s, ResolveOp(), 0)
	if want := PairResp(true, Pop(), ValResp(5)); r != want {
		t.Fatalf("resolve = %v, want %v", r, want)
	}
}

// TestQuickStackQueueDuality: pushing then fully draining a stack yields
// the reverse of doing the same with a queue — a cheap cross-validation
// of both specs' ordering semantics.
func TestQuickStackQueueDuality(t *testing.T) {
	f := func(vals []uint64) bool {
		var st State = NewStack()
		var qu State = NewQueue()
		for _, v := range vals {
			st, _, _ = st.Apply(Push(v), 0)
			qu, _, _ = qu.Apply(Enqueue(v), 0)
		}
		var fromStack, fromQueue []uint64
		for range vals {
			var r Resp
			st, r, _ = st.Apply(Pop(), 0)
			fromStack = append(fromStack, r.V)
			qu, r, _ = qu.Apply(Dequeue(), 0)
			fromQueue = append(fromQueue, r.V)
		}
		for i := range vals {
			if fromStack[i] != fromQueue[len(vals)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
