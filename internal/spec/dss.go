package spec

import (
	"fmt"
	"strings"
)

// DState is the detectable sequential specification D⟨T⟩ of Figure 1: each
// abstract state is a tuple (s, A, R) where s is a state of the base type
// T, A maps each process to its most recently prepared operation (or ⊥),
// and R maps each process to that operation's response (or ⊥).
//
// The four axioms of Figure 1 become Apply cases:
//
//	Axiom 1 (prep-op):  total; sets A[p] = op, R[p] = ⊥; responds ⊥.
//	Axiom 2 (exec-op):  enabled iff A[p] = op ∧ R[p] = ⊥; applies δ,
//	                    records ρ in R[p]; responds ρ(s, op, p).
//	Axiom 3 (resolve):  total, idempotent; responds (A[p], R[p]).
//	Axiom 4 (op):       the base operation, applied non-detectably.
type DState struct {
	base State
	// a[p] is A[p]; hasA[p] false means A[p] = ⊥.
	a    []Op
	hasA []bool
	// r[p] is R[p]; Kind == None means R[p] = ⊥.
	r []Resp
}

// Detectable wraps the initial state of a base type T into the initial
// state of D⟨T⟩ for procs processes: A and R map every process to ⊥.
func Detectable(base State, procs int) DState {
	d := DState{
		base: base,
		a:    make([]Op, procs),
		hasA: make([]bool, procs),
		r:    make([]Resp, procs),
	}
	for p := range d.r {
		d.r[p] = BottomResp()
	}
	return d
}

// Base returns the embedded state of T.
func (d DState) Base() State { return d.base }

// Procs returns the number of processes the state tracks.
func (d DState) Procs() int { return len(d.a) }

// clone returns a deep copy sharing nothing mutable with d.
func (d DState) clone() DState {
	next := DState{
		base: d.base, // base states are immutable
		a:    make([]Op, len(d.a)),
		hasA: make([]bool, len(d.hasA)),
		r:    make([]Resp, len(d.r)),
	}
	copy(next.a, d.a)
	copy(next.hasA, d.hasA)
	copy(next.r, d.r)
	return next
}

// Apply implements State, dispatching on the DSS operation kind.
func (d DState) Apply(op Op, proc int) (State, Resp, bool) {
	if proc < 0 || proc >= len(d.a) {
		return d, Resp{}, false
	}
	switch op.Kind {
	case Prep:
		// Axiom 1: {true} prep-op / pi / ⊥ {A'[pi]=op ∧ R'[pi]=⊥}.
		next := d.clone()
		next.a[proc] = op.base()
		next.hasA[proc] = true
		next.r[proc] = BottomResp()
		return next, BottomResp(), true
	case Exec:
		// Axiom 2: {A[pi]=op ∧ R[pi]=⊥} exec-op / pi / ρ(s,op,pi)
		// {s'=δ(s,op,pi) ∧ R'[pi]=ρ(s,op,pi)}.
		if !d.hasA[proc] || d.a[proc] != op.base() || d.r[proc].Kind != None {
			return d, Resp{}, false
		}
		baseNext, resp, ok := d.base.Apply(op.base(), proc)
		if !ok {
			return d, Resp{}, false
		}
		next := d.clone()
		next.base = baseNext
		next.r[proc] = resp
		return next, resp, true
	case Resolve:
		// Axiom 3: {true} resolve / pi / (A[pi], R[pi]) {}.
		return d, PairResp(d.hasA[proc], d.a[proc], d.r[proc]), true
	case Base:
		// Axiom 4: {true} op / pi / ρ(s,op,pi) {s'=δ(s,op,pi)}.
		baseNext, resp, ok := d.base.Apply(op, proc)
		if !ok {
			return d, Resp{}, false
		}
		next := d.clone()
		next.base = baseNext
		return next, resp, true
	default:
		return d, Resp{}, false
	}
}

// Key implements State.
func (d DState) Key() string {
	var b strings.Builder
	b.WriteString("D[")
	b.WriteString(d.base.Key())
	b.WriteString("]")
	for p := range d.a {
		if !d.hasA[p] {
			b.WriteString("|-")
			continue
		}
		fmt.Fprintf(&b, "|%s>%s", d.a[p], d.r[p])
	}
	return b.String()
}

var _ State = DState{}

// PrepOp, ExecOp and ResolveOp build the auxiliary operations of D⟨T⟩ for
// a base operation.
func PrepOp(base Op) Op {
	base.Kind = Prep
	return base
}

// ExecOp returns the exec form of a base operation.
func ExecOp(base Op) Op {
	base.Kind = Exec
	return base
}

// ResolveOp returns the resolve operation.
func ResolveOp() Op { return Op{Kind: Resolve, Sym: "resolve"} }

// Enqueue, Dequeue, Read, Write, CAS and Inc build base operations.
func Enqueue(v uint64) Op { return Op{Kind: Base, Sym: "enqueue", Arg: v} }

// Dequeue returns the queue dequeue operation.
func Dequeue() Op { return Op{Kind: Base, Sym: "dequeue"} }

// Read returns the register/counter/CAS read operation.
func Read() Op { return Op{Kind: Base, Sym: "read"} }

// Write returns the register/CAS write operation.
func Write(v uint64) Op { return Op{Kind: Base, Sym: "write", Arg: v} }

// CAS returns the compare-and-swap operation.
func CAS(old, new uint64) Op { return Op{Kind: Base, Sym: "cas", Arg: old, Arg2: new} }

// Inc returns the counter increment operation.
func Inc() Op { return Op{Kind: Base, Sym: "inc"} }

// Swap returns the register swap operation (write v, answer the previous
// value).
func Swap(v uint64) Op { return Op{Kind: Base, Sym: "swap", Arg: v} }

// Put returns the map upsert operation.
func Put(k, v uint64) Op { return Op{Kind: Base, Sym: "put", Arg: k, Arg2: v} }

// Get returns the map lookup operation.
func Get(k uint64) Op { return Op{Kind: Base, Sym: "get", Arg: k} }

// Del returns the map removal operation.
func Del(k uint64) Op { return Op{Kind: Base, Sym: "del", Arg: k} }

// MCAS returns the map compare-and-swap operation: replace k's value
// with new iff it currently equals expected. Both values must fit 32
// bits — they travel packed in one word (PackCAS) so the operation fits
// the keyed two-word runtime contract {Kind, Key, Arg}.
func MCAS(k, expected, new uint64) Op {
	return Op{Kind: Base, Sym: "mcas", Arg: k, Arg2: PackCAS(expected, new)}
}

// PackCAS packs a cas argument pair into one word: expected in the high
// 32 bits, new in the low 32. Values wider than 32 bits are masked —
// keyed cas is specified for 32-bit values.
func PackCAS(expected, new uint64) uint64 {
	return expected<<32 | new&(1<<32-1)
}

// UnpackCAS splits a PackCAS word back into (expected, new).
func UnpackCAS(packed uint64) (expected, new uint64) {
	return packed >> 32, packed & (1<<32 - 1)
}
