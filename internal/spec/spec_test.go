package spec

import (
	"testing"
	"testing/quick"
)

// apply is a test helper that fails the test if op is not enabled.
func apply(t *testing.T, s State, op Op, proc int) (State, Resp) {
	t.Helper()
	next, resp, ok := s.Apply(op, proc)
	if !ok {
		t.Fatalf("operation %v not enabled in state %s", op, s.Key())
	}
	return next, resp
}

func TestQueueFIFO(t *testing.T) {
	var s State = NewQueue()
	var r Resp
	s, r = apply(t, s, Enqueue(1), 0)
	if r.Kind != Ack {
		t.Fatalf("enqueue resp = %v, want OK", r)
	}
	s, _ = apply(t, s, Enqueue(2), 0)
	s, _ = apply(t, s, Enqueue(3), 1)
	want := []uint64{1, 2, 3}
	for _, w := range want {
		var resp Resp
		s, resp = apply(t, s, Dequeue(), 1)
		if resp.Kind != Val || resp.V != w {
			t.Fatalf("dequeue resp = %v, want %d", resp, w)
		}
	}
	_, r = apply(t, s, Dequeue(), 0)
	if r.Kind != Empty {
		t.Fatalf("dequeue on empty = %v, want EMPTY", r)
	}
}

func TestQueueRejectsForeignOps(t *testing.T) {
	q := NewQueue()
	if _, _, ok := q.Apply(Read(), 0); ok {
		t.Fatal("queue accepted read()")
	}
	if _, _, ok := q.Apply(PrepOp(Enqueue(1)), 0); ok {
		t.Fatal("plain queue accepted prep-enqueue (only D<queue> has it)")
	}
}

func TestQueueItemsIsACopy(t *testing.T) {
	s, _, _ := NewQueue().Apply(Enqueue(7), 0)
	q := s.(QueueState)
	items := q.Items()
	items[0] = 99
	if q.Items()[0] != 7 {
		t.Fatal("Items exposed internal storage")
	}
}

func TestRegisterReadWrite(t *testing.T) {
	var s State = NewRegister(0)
	_, r := apply(t, s, Read(), 0)
	if r.V != 0 {
		t.Fatalf("initial read = %v, want 0", r)
	}
	s, _ = apply(t, s, Write(42), 0)
	_, r = apply(t, s, Read(), 1)
	if r.V != 42 {
		t.Fatalf("read after write = %v, want 42", r)
	}
}

func TestCounterSemantics(t *testing.T) {
	var s State = NewCounter()
	var r Resp
	s, r = apply(t, s, Inc(), 0)
	if r.V != 0 {
		t.Fatalf("first inc returned %d, want previous value 0", r.V)
	}
	s, r = apply(t, s, Inc(), 1)
	if r.V != 1 {
		t.Fatalf("second inc returned %d, want 1", r.V)
	}
	_, r = apply(t, s, Read(), 0)
	if r.V != 2 {
		t.Fatalf("read = %d, want 2", r.V)
	}
}

func TestCASSemantics(t *testing.T) {
	var s State = NewCAS(5)
	var r Resp
	s, r = apply(t, s, CAS(4, 9), 0)
	if r.V != 0 {
		t.Fatal("CAS with wrong old value succeeded")
	}
	s, r = apply(t, s, CAS(5, 9), 0)
	if r.V != 1 {
		t.Fatal("CAS with right old value failed")
	}
	_, r = apply(t, s, Read(), 0)
	if r.V != 9 {
		t.Fatalf("read = %d, want 9", r.V)
	}
}

func TestDSSPrepExecResolveHappyPath(t *testing.T) {
	// Figure 2(a): prep-write(1); exec-write(1); resolve → (write(1), OK).
	var s State = Detectable(NewRegister(0), 2)
	s, r := apply(t, s, PrepOp(Write(1)), 0)
	if r.Kind != None {
		t.Fatalf("prep resp = %v, want ⊥", r)
	}
	s, r = apply(t, s, ExecOp(Write(1)), 0)
	if r.Kind != Ack {
		t.Fatalf("exec resp = %v, want OK", r)
	}
	_, r = apply(t, s, ResolveOp(), 0)
	want := PairResp(true, Write(1), AckResp())
	if r != want {
		t.Fatalf("resolve = %v, want %v", r, want)
	}
	// The write must have taken effect on the base state.
	_, rr := apply(t, s, Read(), 1)
	if rr.V != 1 {
		t.Fatalf("read after exec = %d, want 1", rr.V)
	}
}

func TestDSSResolveBeforeExec(t *testing.T) {
	// Figure 2(c): prep-write(1); crash before exec; resolve → (write(1), ⊥).
	var s State = Detectable(NewRegister(0), 1)
	s, _ = apply(t, s, PrepOp(Write(1)), 0)
	_, r := apply(t, s, ResolveOp(), 0)
	want := PairResp(true, Write(1), BottomResp())
	if r != want {
		t.Fatalf("resolve = %v, want %v", r, want)
	}
}

func TestDSSResolveWithoutPrep(t *testing.T) {
	// Figure 2(d), no-prep branch: resolve → (⊥, ⊥).
	var s State = Detectable(NewRegister(0), 1)
	_, r := apply(t, s, ResolveOp(), 0)
	want := PairResp(false, Op{}, BottomResp())
	if r != want {
		t.Fatalf("resolve = %v, want %v", r, want)
	}
}

func TestDSSExecRequiresMatchingPrep(t *testing.T) {
	var s State = Detectable(NewRegister(0), 1)
	if _, _, ok := s.Apply(ExecOp(Write(1)), 0); ok {
		t.Fatal("exec enabled with no prep")
	}
	s, _ = apply(t, s, PrepOp(Write(1)), 0)
	if _, _, ok := s.Apply(ExecOp(Write(2)), 0); ok {
		t.Fatal("exec enabled for a different operation than prepared")
	}
}

func TestDSSExecNotRepeatable(t *testing.T) {
	// Axiom 2's precondition R[p] = ⊥ forbids double execution: this is
	// what gives resolve its exactly-once meaning.
	var s State = Detectable(NewCounter(), 1)
	s, _ = apply(t, s, PrepOp(Inc()), 0)
	s, _ = apply(t, s, ExecOp(Inc()), 0)
	if _, _, ok := s.Apply(ExecOp(Inc()), 0); ok {
		t.Fatal("exec enabled twice for one prep")
	}
}

func TestDSSPrepAndResolveAreIdempotent(t *testing.T) {
	var s State = Detectable(NewRegister(0), 1)
	// Repeated prep of the same op must stay enabled and keep R[p] = ⊥.
	for i := 0; i < 3; i++ {
		var ok bool
		var next State
		next, _, ok = s.Apply(PrepOp(Write(1)), 0)
		if !ok {
			t.Fatalf("prep #%d not enabled", i)
		}
		s = next
	}
	// Repeated resolve returns the same pair and changes nothing.
	k := s.Key()
	for i := 0; i < 3; i++ {
		next, r, ok := s.Apply(ResolveOp(), 0)
		if !ok {
			t.Fatalf("resolve #%d not enabled", i)
		}
		if want := PairResp(true, Write(1), BottomResp()); r != want {
			t.Fatalf("resolve #%d = %v, want %v", i, r, want)
		}
		if next.Key() != k {
			t.Fatalf("resolve changed state: %s -> %s", k, next.Key())
		}
		s = next
	}
}

func TestDSSRePrepResetsResponse(t *testing.T) {
	var s State = Detectable(NewCounter(), 1)
	s, _ = apply(t, s, PrepOp(Inc()), 0)
	s, _ = apply(t, s, ExecOp(Inc()), 0)
	s, _ = apply(t, s, PrepOp(Inc()), 0) // new intent
	_, r := apply(t, s, ResolveOp(), 0)
	want := PairResp(true, Inc(), BottomResp())
	if r != want {
		t.Fatalf("resolve after re-prep = %v, want %v", r, want)
	}
}

func TestDSSTagDisambiguatesRepeatedOps(t *testing.T) {
	// Section 2.1's closing remark: an auxiliary argument saved in A[p]
	// but ignored by δ separates successive executions of the same op.
	var s State = Detectable(NewQueue(), 1)
	op1 := Enqueue(5)
	op1.Tag = 1
	op2 := Enqueue(5)
	op2.Tag = 2
	s, _ = apply(t, s, PrepOp(op1), 0)
	s, _ = apply(t, s, ExecOp(op1), 0)
	s, _ = apply(t, s, PrepOp(op2), 0)
	_, r := apply(t, s, ResolveOp(), 0)
	if !r.HasOp || r.POp.Tag != 2 {
		t.Fatalf("resolve reports tag %d, want 2", r.POp.Tag)
	}
	if r.Inner != None {
		t.Fatalf("second enqueue reported as executed: %v", r)
	}
	// The tag must not affect δ: the queue holds exactly one 5.
	q := s.(DState).Base().(QueueState)
	if items := q.Items(); len(items) != 1 || items[0] != 5 {
		t.Fatalf("queue items = %v, want [5]", items)
	}
}

func TestDSSBaseOpsPassThrough(t *testing.T) {
	// Axiom 4: non-detectable operations apply δ without touching A or R.
	var s State = Detectable(NewQueue(), 2)
	s, _ = apply(t, s, PrepOp(Enqueue(1)), 0)
	s, r := apply(t, s, Enqueue(9), 1)
	if r.Kind != Ack {
		t.Fatalf("base enqueue resp = %v", r)
	}
	_, r = apply(t, s, ResolveOp(), 0)
	if want := PairResp(true, Enqueue(1), BottomResp()); r != want {
		t.Fatalf("resolve perturbed by base op: %v, want %v", r, want)
	}
	_, r = apply(t, s, ResolveOp(), 1)
	if want := PairResp(false, Op{}, BottomResp()); r != want {
		t.Fatalf("base op set A[p]: resolve = %v, want (⊥,⊥)", r)
	}
}

func TestDSSPerProcessIsolation(t *testing.T) {
	var s State = Detectable(NewRegister(0), 3)
	s, _ = apply(t, s, PrepOp(Write(1)), 0)
	s, _ = apply(t, s, PrepOp(Write(2)), 1)
	s, _ = apply(t, s, ExecOp(Write(2)), 1)
	_, r0 := apply(t, s, ResolveOp(), 0)
	_, r1 := apply(t, s, ResolveOp(), 1)
	_, r2 := apply(t, s, ResolveOp(), 2)
	if want := PairResp(true, Write(1), BottomResp()); r0 != want {
		t.Fatalf("p0 resolve = %v, want %v", r0, want)
	}
	if want := PairResp(true, Write(2), AckResp()); r1 != want {
		t.Fatalf("p1 resolve = %v, want %v", r1, want)
	}
	if want := PairResp(false, Op{}, BottomResp()); r2 != want {
		t.Fatalf("p2 resolve = %v, want %v", r2, want)
	}
}

func TestDSSRejectsOutOfRangeProc(t *testing.T) {
	s := Detectable(NewRegister(0), 2)
	if _, _, ok := s.Apply(PrepOp(Write(1)), 2); ok {
		t.Fatal("accepted proc 2 with 2 processes")
	}
	if _, _, ok := s.Apply(ResolveOp(), -1); ok {
		t.Fatal("accepted proc -1")
	}
}

func TestKeyDistinguishesStates(t *testing.T) {
	a := Detectable(NewQueue(), 2)
	b1, _, _ := a.Apply(PrepOp(Enqueue(1)), 0)
	b2, _, _ := a.Apply(PrepOp(Enqueue(1)), 1)
	b3, _, _ := a.Apply(Enqueue(1), 0)
	keys := map[string]bool{a.Key(): true, b1.Key(): true, b2.Key(): true, b3.Key(): true}
	if len(keys) != 4 {
		t.Fatalf("expected 4 distinct keys, got %d", len(keys))
	}
}

func TestOpAndRespStrings(t *testing.T) {
	tests := []struct {
		got  string
		want string
	}{
		{Enqueue(3).String(), "enqueue(3)"},
		{PrepOp(Enqueue(3)).String(), "prep-enqueue(3)"},
		{ExecOp(Dequeue()).String(), "exec-dequeue(0)"},
		{CAS(1, 2).String(), "cas(1,2)"},
		{AckResp().String(), "OK"},
		{ValResp(7).String(), "7"},
		{EmptyResp().String(), "EMPTY"},
		{BottomResp().String(), "⊥"},
		{PairResp(true, Write(1), AckResp()).String(), "(write(1), OK)"},
		{PairResp(false, Op{}, BottomResp()).String(), "(⊥, ⊥)"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}

// TestQuickDSSProjection: for any sequence of detectable operations by a
// single process, the base state of D⟨T⟩ equals the state of T after
// applying exactly the executed base operations in order.
func TestQuickDSSProjection(t *testing.T) {
	type step struct {
		Enq  bool
		V    uint64
		Skip bool // prep without exec
	}
	f := func(steps []step) bool {
		var d State = Detectable(NewQueue(), 1)
		var plain State = NewQueue()
		for _, st := range steps {
			op := Dequeue()
			if st.Enq {
				op = Enqueue(st.V)
			}
			var ok bool
			d, _, ok = d.Apply(PrepOp(op), 0)
			if !ok {
				return false
			}
			if st.Skip {
				continue
			}
			var rd, rp Resp
			d, rd, ok = d.Apply(ExecOp(op), 0)
			if !ok {
				return false
			}
			plain, rp, ok = plain.Apply(op, 0)
			if !ok {
				return false
			}
			if rd != rp {
				return false // detectable exec must return ρ of the base type
			}
		}
		return d.(DState).Base().Key() == plain.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickResolveReflectsLastPrep: resolve always reports the most recent
// prep and, iff an exec followed it, the exec's response.
func TestQuickResolveReflectsLastPrep(t *testing.T) {
	type step struct {
		V    uint64
		Exec bool
	}
	f := func(steps []step) bool {
		var d State = Detectable(NewCounter(), 1)
		var lastOp Op
		prepared := false
		var lastResp Resp = BottomResp()
		for i, st := range steps {
			op := Inc()
			op.Tag = uint64(i + 1)
			var ok bool
			d, _, ok = d.Apply(PrepOp(op), 0)
			if !ok {
				return false
			}
			lastOp, prepared, lastResp = op, true, BottomResp()
			if st.Exec {
				var r Resp
				d, r, ok = d.Apply(ExecOp(op), 0)
				if !ok {
					return false
				}
				lastResp = r
			}
			_, got, ok := d.Apply(ResolveOp(), 0)
			if !ok {
				return false
			}
			want := PairResp(prepared, lastOp, lastResp)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecSmallAccessors(t *testing.T) {
	d := Detectable(NewQueue(), 3)
	if d.Procs() != 3 {
		t.Fatalf("Procs = %d", d.Procs())
	}
	for k, want := range map[OpKind]string{Base: "op", Prep: "prep", Exec: "exec", Resolve: "resolve"} {
		if k.String() != want {
			t.Fatalf("OpKind(%d).String() = %q", int(k), k.String())
		}
	}
	if OpKind(42).String() != "OpKind(42)" {
		t.Fatal("invalid OpKind string")
	}
	// Keys of the scalar types distinguish values.
	if NewRegister(1).Key() == NewRegister(2).Key() {
		t.Fatal("register keys collide")
	}
	if NewCounter().Key() == "" || NewCAS(7).Key() == "" {
		t.Fatal("empty keys")
	}
	s1, _, _ := NewStack().Apply(Push(1), 0)
	if s1.Key() == NewStack().Key() {
		t.Fatal("stack keys collide")
	}
}

func TestScalarTypesRejectForeignOps(t *testing.T) {
	for name, s := range map[string]State{
		"register": NewRegister(0),
		"counter":  NewCounter(),
		"cas":      NewCAS(0),
	} {
		if _, _, ok := s.Apply(Enqueue(1), 0); ok {
			t.Errorf("%s accepted enqueue", name)
		}
		if _, _, ok := s.Apply(PrepOp(Read()), 0); ok {
			t.Errorf("%s accepted prep without D<T>", name)
		}
	}
	if _, _, ok := NewRegister(0).Apply(Inc(), 0); ok {
		t.Error("register accepted inc")
	}
	if _, _, ok := NewCounter().Apply(Write(1), 0); ok {
		t.Error("counter accepted write")
	}
}
