// Package spec gives executable form to the paper's formalism: sequential
// specifications of object types T = (S, s0, OP, R, δ, ρ) and the DSS
// transformation T → D⟨T⟩ of Section 2.1 (Figure 1).
//
// A State value is one abstract state s ∈ S together with the transition
// and response functions of its type: Apply(op, proc) computes δ and ρ in
// one step and reports whether the operation is enabled (axiom
// preconditions). States are immutable — Apply returns a fresh State — so
// the linearizability checker can branch over them, and Key returns a
// canonical encoding for memoization.
package spec

import (
	"fmt"
	"strings"
)

// OpKind distinguishes the operations of a detectable type D⟨T⟩. Base
// operations are the original operations of T (Axiom 4); Prep, Exec and
// Resolve are the auxiliary operations added by the DSS transformation
// (Axioms 1-3).
type OpKind int

const (
	// Base is an ordinary, non-detectable operation of T.
	Base OpKind = iota + 1
	// Prep is prep-op: declare intent to execute op detectably (Axiom 1).
	Prep
	// Exec is exec-op: apply the prepared operation (Axiom 2).
	Exec
	// Resolve reports the most recently prepared operation and its
	// response, if any (Axiom 3).
	Resolve
)

// String returns the kind name.
func (k OpKind) String() string {
	switch k {
	case Base:
		return "op"
	case Prep:
		return "prep"
	case Exec:
		return "exec"
	case Resolve:
		return "resolve"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one operation invocation. Sym names the base operation ("enqueue",
// "write", ...); Arg and Arg2 are its arguments. Tag is the auxiliary
// argument of Section 2.1's final remark: it is recorded in A[p] by
// prep-op, making repeated invocations of the same operation
// distinguishable, but it is ignored by δ and ρ.
type Op struct {
	Kind OpKind
	Sym  string
	Arg  uint64
	Arg2 uint64
	Tag  uint64
}

// String renders the operation for diagnostics.
func (o Op) String() string {
	var b strings.Builder
	if o.Kind != Base {
		fmt.Fprintf(&b, "%s-", o.Kind)
	}
	b.WriteString(o.Sym)
	fmt.Fprintf(&b, "(%d", o.Arg)
	switch o.Sym {
	case "cas", "put", "mcas":
		fmt.Fprintf(&b, ",%d", o.Arg2)
	}
	b.WriteString(")")
	if o.Tag != 0 {
		fmt.Fprintf(&b, "#%d", o.Tag)
	}
	return b.String()
}

// base returns the operation with Kind normalized to Base, for comparing an
// exec against the prepared entry in A[p].
func (o Op) base() Op {
	o.Kind = Base
	return o
}

// RespKind classifies a response value.
type RespKind int

const (
	// None is ⊥: no response (prep-op's response, and the R[p] of an
	// operation that has not taken effect).
	None RespKind = iota + 1
	// Ack is the OK response of operations with no return value.
	Ack
	// Val carries a numeric return value.
	Val
	// Empty is the queue's distinguished empty response.
	Empty
	// Pair is resolve's response (A[p], R[p]).
	Pair
)

// Resp is an operation response. For Kind == Pair (the response of
// resolve), HasOp and POp carry A[p] (HasOp false means A[p] = ⊥), and
// Inner/InnerVal/InnerVal2 carry R[p] (Inner == None means R[p] = ⊥).
//
// V2 is the response's second word: operations of two-word types (the
// swap/CAS register's cas, the map's cas) answer with a pair — success
// bit in V, witnessed value in V2. One-word types leave it zero, so the
// widened struct compares and renders identically for them.
type Resp struct {
	Kind      RespKind
	V         uint64
	V2        uint64
	HasOp     bool
	POp       Op
	Inner     RespKind
	InnerVal  uint64
	InnerVal2 uint64
}

// String renders the response for diagnostics.
func (r Resp) String() string {
	switch r.Kind {
	case None:
		return "⊥"
	case Ack:
		return "OK"
	case Val:
		if r.V2 != 0 {
			return fmt.Sprintf("%d/%d", r.V, r.V2)
		}
		return fmt.Sprintf("%d", r.V)
	case Empty:
		return "EMPTY"
	case Pair:
		op := "⊥"
		if r.HasOp {
			op = r.POp.String()
		}
		inner := "⊥"
		switch r.Inner {
		case Ack:
			inner = "OK"
		case Val:
			if r.InnerVal2 != 0 {
				inner = fmt.Sprintf("%d/%d", r.InnerVal, r.InnerVal2)
			} else {
				inner = fmt.Sprintf("%d", r.InnerVal)
			}
		case Empty:
			inner = "EMPTY"
		}
		return fmt.Sprintf("(%s, %s)", op, inner)
	default:
		return fmt.Sprintf("Resp(%d)", int(r.Kind))
	}
}

// AckResp, ValResp, EmptyResp and BottomResp build common responses.
func AckResp() Resp         { return Resp{Kind: Ack} }
func ValResp(v uint64) Resp { return Resp{Kind: Val, V: v} }
func EmptyResp() Resp       { return Resp{Kind: Empty} }
func BottomResp() Resp      { return Resp{Kind: None} }

// ValResp2 builds a two-word value response (the register/map cas shape:
// success in v, witnessed value in v2).
func ValResp2(v, v2 uint64) Resp { return Resp{Kind: Val, V: v, V2: v2} }

// PairResp builds a resolve response (op, r). Pass hasOp=false for (⊥, ⊥).
func PairResp(hasOp bool, op Op, r Resp) Resp {
	return Resp{Kind: Pair, HasOp: hasOp, POp: op, Inner: r.Kind, InnerVal: r.V, InnerVal2: r.V2}
}

// State is one abstract state of a sequential specification.
type State interface {
	// Apply computes the state transition δ(s, op, p) and response
	// ρ(s, op, p). enabled is false when the operation's precondition does
	// not hold in s (the operation cannot occur here in a legal sequential
	// history) or when op is not an operation of this type.
	Apply(op Op, proc int) (next State, resp Resp, enabled bool)
	// Key is a canonical encoding of s for memoization. Two states are
	// equal iff their keys are equal.
	Key() string
}
