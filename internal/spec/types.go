package spec

import (
	"fmt"
	"strings"
)

// QueueState is the sequential specification of an unbounded FIFO queue of
// 64-bit values. Operations: enqueue(v) → OK, dequeue() → v or EMPTY.
type QueueState struct {
	items []uint64
}

// NewQueue returns the initial (empty) queue state.
func NewQueue() QueueState { return QueueState{} }

// Items returns a copy of the queued values, front first.
func (q QueueState) Items() []uint64 {
	out := make([]uint64, len(q.items))
	copy(out, q.items)
	return out
}

// Apply implements State.
func (q QueueState) Apply(op Op, _ int) (State, Resp, bool) {
	if op.Kind != Base {
		return q, Resp{}, false
	}
	switch op.Sym {
	case "enqueue":
		next := make([]uint64, len(q.items)+1)
		copy(next, q.items)
		next[len(q.items)] = op.Arg
		return QueueState{items: next}, AckResp(), true
	case "dequeue":
		if len(q.items) == 0 {
			return q, EmptyResp(), true
		}
		next := make([]uint64, len(q.items)-1)
		copy(next, q.items[1:])
		return QueueState{items: next}, ValResp(q.items[0]), true
	default:
		return q, Resp{}, false
	}
}

// Key implements State.
func (q QueueState) Key() string {
	var b strings.Builder
	b.WriteString("q:")
	for _, v := range q.items {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// RegisterState is the sequential specification of a read/write register.
// Operations: read() → v, write(v) → OK.
type RegisterState struct {
	val uint64
}

// NewRegister returns a register state holding v.
func NewRegister(v uint64) RegisterState { return RegisterState{val: v} }

// Apply implements State.
func (r RegisterState) Apply(op Op, _ int) (State, Resp, bool) {
	if op.Kind != Base {
		return r, Resp{}, false
	}
	switch op.Sym {
	case "read":
		return r, ValResp(r.val), true
	case "write":
		return RegisterState{val: op.Arg}, AckResp(), true
	default:
		return r, Resp{}, false
	}
}

// Key implements State.
func (r RegisterState) Key() string { return fmt.Sprintf("r:%d", r.val) }

// CounterState is the sequential specification of a fetch-and-increment
// counter. Operations: inc() → previous value, read() → v.
type CounterState struct {
	n uint64
}

// NewCounter returns the initial counter state.
func NewCounter() CounterState { return CounterState{} }

// Apply implements State.
func (c CounterState) Apply(op Op, _ int) (State, Resp, bool) {
	if op.Kind != Base {
		return c, Resp{}, false
	}
	switch op.Sym {
	case "inc":
		return CounterState{n: c.n + 1}, ValResp(c.n), true
	case "read":
		return c, ValResp(c.n), true
	default:
		return c, Resp{}, false
	}
}

// Key implements State.
func (c CounterState) Key() string { return fmt.Sprintf("c:%d", c.n) }

// CASState is the sequential specification of a Compare-And-Swap object.
// Operations: read() → v, write(v) → OK, cas(old, new) → 1 on success,
// 0 on failure.
type CASState struct {
	val uint64
}

// NewCAS returns a CAS object state holding v.
func NewCAS(v uint64) CASState { return CASState{val: v} }

// Apply implements State.
func (c CASState) Apply(op Op, _ int) (State, Resp, bool) {
	if op.Kind != Base {
		return c, Resp{}, false
	}
	switch op.Sym {
	case "read":
		return c, ValResp(c.val), true
	case "write":
		return CASState{val: op.Arg}, AckResp(), true
	case "cas":
		if c.val == op.Arg {
			return CASState{val: op.Arg2}, ValResp(1), true
		}
		return c, ValResp(0), true
	default:
		return c, Resp{}, false
	}
}

// Key implements State.
func (c CASState) Key() string { return fmt.Sprintf("cas:%d", c.val) }

// StackState is the sequential specification of an unbounded LIFO stack
// of 64-bit values. Operations: push(v) → OK, pop() → v or EMPTY. The
// paper only builds a queue; the stack spec supports this repository's
// DSS-stack extension, which applies the same transformation to a second
// structure.
type StackState struct {
	items []uint64 // items[len-1] is the top
}

// NewStack returns the initial (empty) stack state.
func NewStack() StackState { return StackState{} }

// Items returns a copy of the stacked values, bottom first.
func (s StackState) Items() []uint64 {
	out := make([]uint64, len(s.items))
	copy(out, s.items)
	return out
}

// Apply implements State.
func (s StackState) Apply(op Op, _ int) (State, Resp, bool) {
	if op.Kind != Base {
		return s, Resp{}, false
	}
	switch op.Sym {
	case "push":
		next := make([]uint64, len(s.items)+1)
		copy(next, s.items)
		next[len(s.items)] = op.Arg
		return StackState{items: next}, AckResp(), true
	case "pop":
		if len(s.items) == 0 {
			return s, EmptyResp(), true
		}
		next := make([]uint64, len(s.items)-1)
		copy(next, s.items[:len(s.items)-1])
		return StackState{items: next}, ValResp(s.items[len(s.items)-1]), true
	default:
		return s, Resp{}, false
	}
}

// Key implements State.
func (s StackState) Key() string {
	var b strings.Builder
	b.WriteString("s:")
	for _, v := range s.items {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// Push and Pop build the stack's base operations.
func Push(v uint64) Op { return Op{Kind: Base, Sym: "push", Arg: v} }

// Pop returns the stack pop operation.
func Pop() Op { return Op{Kind: Base, Sym: "pop"} }

var (
	_ State = QueueState{}
	_ State = RegisterState{}
	_ State = CounterState{}
	_ State = CASState{}
	_ State = StackState{}
)
