package spec

import (
	"fmt"
	"strings"
)

// QueueState is the sequential specification of an unbounded FIFO queue of
// 64-bit values. Operations: enqueue(v) → OK, dequeue() → v or EMPTY.
type QueueState struct {
	items []uint64
}

// NewQueue returns the initial (empty) queue state.
func NewQueue() QueueState { return QueueState{} }

// Items returns a copy of the queued values, front first.
func (q QueueState) Items() []uint64 {
	out := make([]uint64, len(q.items))
	copy(out, q.items)
	return out
}

// Apply implements State.
func (q QueueState) Apply(op Op, _ int) (State, Resp, bool) {
	if op.Kind != Base {
		return q, Resp{}, false
	}
	switch op.Sym {
	case "enqueue":
		next := make([]uint64, len(q.items)+1)
		copy(next, q.items)
		next[len(q.items)] = op.Arg
		return QueueState{items: next}, AckResp(), true
	case "dequeue":
		if len(q.items) == 0 {
			return q, EmptyResp(), true
		}
		next := make([]uint64, len(q.items)-1)
		copy(next, q.items[1:])
		return QueueState{items: next}, ValResp(q.items[0]), true
	default:
		return q, Resp{}, false
	}
}

// Key implements State.
func (q QueueState) Key() string {
	var b strings.Builder
	b.WriteString("q:")
	for _, v := range q.items {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// RegisterState is the sequential specification of a read/write register.
// Operations: read() → v, write(v) → OK.
type RegisterState struct {
	val uint64
}

// NewRegister returns a register state holding v.
func NewRegister(v uint64) RegisterState { return RegisterState{val: v} }

// Apply implements State.
func (r RegisterState) Apply(op Op, _ int) (State, Resp, bool) {
	if op.Kind != Base {
		return r, Resp{}, false
	}
	switch op.Sym {
	case "read":
		return r, ValResp(r.val), true
	case "write":
		return RegisterState{val: op.Arg}, AckResp(), true
	default:
		return r, Resp{}, false
	}
}

// Key implements State.
func (r RegisterState) Key() string { return fmt.Sprintf("r:%d", r.val) }

// CounterState is the sequential specification of a fetch-and-increment
// counter. Operations: inc() → previous value, read() → v.
type CounterState struct {
	n uint64
}

// NewCounter returns the initial counter state.
func NewCounter() CounterState { return CounterState{} }

// Apply implements State.
func (c CounterState) Apply(op Op, _ int) (State, Resp, bool) {
	if op.Kind != Base {
		return c, Resp{}, false
	}
	switch op.Sym {
	case "inc":
		return CounterState{n: c.n + 1}, ValResp(c.n), true
	case "read":
		return c, ValResp(c.n), true
	default:
		return c, Resp{}, false
	}
}

// Key implements State.
func (c CounterState) Key() string { return fmt.Sprintf("c:%d", c.n) }

// CASState is the sequential specification of a Compare-And-Swap object.
// Operations: read() → v, write(v) → OK, cas(old, new) → 1 on success,
// 0 on failure.
type CASState struct {
	val uint64
}

// NewCAS returns a CAS object state holding v.
func NewCAS(v uint64) CASState { return CASState{val: v} }

// Apply implements State.
func (c CASState) Apply(op Op, _ int) (State, Resp, bool) {
	if op.Kind != Base {
		return c, Resp{}, false
	}
	switch op.Sym {
	case "read":
		return c, ValResp(c.val), true
	case "write":
		return CASState{val: op.Arg}, AckResp(), true
	case "cas":
		if c.val == op.Arg {
			return CASState{val: op.Arg2}, ValResp(1), true
		}
		return c, ValResp(0), true
	default:
		return c, Resp{}, false
	}
}

// Key implements State.
func (c CASState) Key() string { return fmt.Sprintf("cas:%d", c.val) }

// SwapState is the sequential specification of a swap/CAS register — the
// canonical next detectable object after the containers ("Recoverable and
// Detectable Self-Implementations of Swap"). Operations: read() → v,
// write(v) → OK, swap(v) → previous value, cas(old, new) → (1, old) on
// success and (0, witnessed) on failure. The cas response is two words
// (success bit and witnessed value), exercising Resp.V2.
type SwapState struct {
	val uint64
}

// NewSwap returns a swap-register state holding v.
func NewSwap(v uint64) SwapState { return SwapState{val: v} }

// Value returns the held value (test access).
func (s SwapState) Value() uint64 { return s.val }

// Apply implements State.
func (s SwapState) Apply(op Op, _ int) (State, Resp, bool) {
	if op.Kind != Base {
		return s, Resp{}, false
	}
	switch op.Sym {
	case "read":
		return s, ValResp(s.val), true
	case "write":
		return SwapState{val: op.Arg}, AckResp(), true
	case "swap":
		return SwapState{val: op.Arg}, ValResp(s.val), true
	case "cas":
		if s.val == op.Arg {
			return SwapState{val: op.Arg2}, ValResp2(1, s.val), true
		}
		return s, ValResp2(0, s.val), true
	default:
		return s, Resp{}, false
	}
}

// Key implements State.
func (s SwapState) Key() string { return fmt.Sprintf("sw:%d", s.val) }

// MapState is the sequential specification of a keyed map from 64-bit
// / keys to values. Operations: put(k, v) → OK (upsert), get(k) → v or
// EMPTY (absent key), del(k) → the removed value or EMPTY, and
// mcas(k, packed) → (1, old) / (0, witnessed) where packed carries
// (expected, new) via PackCAS — a cas on an absent key fails with
// witness 0. Like the swap register's cas, mcas answers in two words.
type MapState struct {
	// kv is an immutable association list sorted by key (states are
	// copied on write, and Key() needs a canonical order anyway).
	kv []KV
}

// KV is one key/value pair of a MapState.
type KV struct {
	K, V uint64
}

// NewMap returns the initial (empty) map state.
func NewMap() MapState { return MapState{} }

// Items returns a copy of the pairs, sorted by key.
func (m MapState) Items() []KV {
	out := make([]KV, len(m.kv))
	copy(out, m.kv)
	return out
}

// find returns the index of k in m.kv, or the insertion point with ok
// false.
func (m MapState) find(k uint64) (int, bool) {
	lo, hi := 0, len(m.kv)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.kv[mid].K < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(m.kv) && m.kv[lo].K == k
}

// with returns a copy of m with k bound to v.
func (m MapState) with(k, v uint64) MapState {
	i, ok := m.find(k)
	next := make([]KV, len(m.kv), len(m.kv)+1)
	copy(next, m.kv)
	if ok {
		next[i] = KV{K: k, V: v}
		return MapState{kv: next}
	}
	next = append(next, KV{})
	copy(next[i+1:], next[i:])
	next[i] = KV{K: k, V: v}
	return MapState{kv: next}
}

// without returns a copy of m with k removed.
func (m MapState) without(k uint64) MapState {
	i, ok := m.find(k)
	if !ok {
		return m
	}
	next := make([]KV, 0, len(m.kv)-1)
	next = append(next, m.kv[:i]...)
	next = append(next, m.kv[i+1:]...)
	return MapState{kv: next}
}

// Apply implements State.
func (m MapState) Apply(op Op, _ int) (State, Resp, bool) {
	if op.Kind != Base {
		return m, Resp{}, false
	}
	switch op.Sym {
	case "put":
		return m.with(op.Arg, op.Arg2), AckResp(), true
	case "get":
		if i, ok := m.find(op.Arg); ok {
			return m, ValResp(m.kv[i].V), true
		}
		return m, EmptyResp(), true
	case "del":
		if i, ok := m.find(op.Arg); ok {
			return m.without(op.Arg), ValResp(m.kv[i].V), true
		}
		return m, EmptyResp(), true
	case "mcas":
		exp, new := UnpackCAS(op.Arg2)
		i, ok := m.find(op.Arg)
		if !ok {
			return m, ValResp2(0, 0), true
		}
		if m.kv[i].V != exp {
			return m, ValResp2(0, m.kv[i].V), true
		}
		return m.with(op.Arg, new), ValResp2(1, exp), true
	default:
		return m, Resp{}, false
	}
}

// Key implements State.
func (m MapState) Key() string {
	var b strings.Builder
	b.WriteString("m:")
	for _, p := range m.kv {
		fmt.Fprintf(&b, "%d=%d,", p.K, p.V)
	}
	return b.String()
}

// StackState is the sequential specification of an unbounded LIFO stack
// of 64-bit values. Operations: push(v) → OK, pop() → v or EMPTY. The
// paper only builds a queue; the stack spec supports this repository's
// DSS-stack extension, which applies the same transformation to a second
// structure.
type StackState struct {
	items []uint64 // items[len-1] is the top
}

// NewStack returns the initial (empty) stack state.
func NewStack() StackState { return StackState{} }

// Items returns a copy of the stacked values, bottom first.
func (s StackState) Items() []uint64 {
	out := make([]uint64, len(s.items))
	copy(out, s.items)
	return out
}

// Apply implements State.
func (s StackState) Apply(op Op, _ int) (State, Resp, bool) {
	if op.Kind != Base {
		return s, Resp{}, false
	}
	switch op.Sym {
	case "push":
		next := make([]uint64, len(s.items)+1)
		copy(next, s.items)
		next[len(s.items)] = op.Arg
		return StackState{items: next}, AckResp(), true
	case "pop":
		if len(s.items) == 0 {
			return s, EmptyResp(), true
		}
		next := make([]uint64, len(s.items)-1)
		copy(next, s.items[:len(s.items)-1])
		return StackState{items: next}, ValResp(s.items[len(s.items)-1]), true
	default:
		return s, Resp{}, false
	}
}

// Key implements State.
func (s StackState) Key() string {
	var b strings.Builder
	b.WriteString("s:")
	for _, v := range s.items {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// Push and Pop build the stack's base operations.
func Push(v uint64) Op { return Op{Kind: Base, Sym: "push", Arg: v} }

// Pop returns the stack pop operation.
func Pop() Op { return Op{Kind: Base, Sym: "pop"} }

var (
	_ State = QueueState{}
	_ State = RegisterState{}
	_ State = CounterState{}
	_ State = CASState{}
	_ State = StackState{}
	_ State = SwapState{}
	_ State = MapState{}
)
