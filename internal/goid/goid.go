// Package goid identifies the current goroutine by parsing the runtime
// stack header — a testing-only device shared by the cooperative
// schedulers in this repository (internal/systematic's model checker and
// internal/vtime's virtual-clock scheduler). Both must map step-gate
// calls back to registered workers, and the runtime offers no cheaper
// identity.
package goid

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
)

// initialBuf is the initial stack-header read size used by ID. It is a
// variable so tests can shrink it and exercise the growth path.
var initialBuf = 64

// ID returns the current goroutine's id.
//
// runtime.Stack truncates at the buffer size, so a fixed-size read could
// cut the header "goroutine N [running]:" mid-number and either fail to
// parse or, worse, silently yield a prefix of the real id. ID therefore
// accepts the id field only when its terminator (the "[state]:" token)
// was captured too, and grows the buffer until it sees one.
func ID() uint64 {
	buf := make([]byte, initialBuf)
	for {
		n := runtime.Stack(buf, false)
		// "goroutine 123 [running]:" — require at least three fields so
		// the id field is known to be complete, not cut by the buffer.
		fields := bytes.Fields(buf[:n])
		if len(fields) >= 3 && bytes.Equal(fields[0], []byte("goroutine")) {
			id, err := strconv.ParseUint(string(fields[1]), 10, 64)
			if err == nil {
				return id
			}
		}
		if n < len(buf) {
			// The whole trace fit and the header still did not parse:
			// growing cannot help.
			panic(fmt.Sprintf("goid: cannot parse goroutine id from %q", buf[:n]))
		}
		buf = make([]byte, 2*len(buf))
	}
}
