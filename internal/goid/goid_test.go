package goid

import (
	"sync"
	"testing"
)

// TestIDGrowsTruncatedBuffer shrinks the initial read below the header
// size, forcing ID through its growth path; the result must match the id
// parsed with an ample buffer.
func TestIDGrowsTruncatedBuffer(t *testing.T) {
	reference := ID()
	old := initialBuf
	initialBuf = 2 // far too small for "goroutine N [running]:"
	defer func() { initialBuf = old }()
	if got := ID(); got != reference {
		t.Fatalf("ID with truncated initial buffer = %d, want %d", got, reference)
	}
}

// TestIDDistinguishesGoroutines checks distinct goroutines see distinct
// ids and that an id is stable across calls from the same goroutine.
func TestIDDistinguishesGoroutines(t *testing.T) {
	main1, main2 := ID(), ID()
	if main1 != main2 {
		t.Fatalf("same goroutine saw ids %d and %d", main1, main2)
	}
	const n = 8
	ids := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = ID()
		}(i)
	}
	wg.Wait()
	seen := map[uint64]bool{main1: true}
	for i, id := range ids {
		if seen[id] {
			t.Fatalf("goroutine %d: id %d seen twice", i, id)
		}
		seen[id] = true
	}
}
