package systematic

import (
	"fmt"
	"testing"

	"repro/internal/cwe"
	"repro/internal/pmem"
	"repro/internal/pmwcas"
)

// TestPMwCASUnderAllSchedules drives two threads through retry loops of
// overlapping two-word PMwCAS increments under every ≤2-preemption
// schedule: the descriptor installation, helping, and RDCSS completion
// paths are all reached by schedules that preempt between the phases, and
// the pair must always advance atomically.
func TestPMwCASUnderAllSchedules(t *testing.T) {
	var p *pmwcas.PMwCAS
	var a, b pmem.Addr
	setup := func() (*pmem.Heap, []func()) {
		h := newHeap(t)
		var err error
		p, err = pmwcas.New(h, 0, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		region := h.MustAlloc(2 * pmem.WordsPerLine)
		a, b = region, region+pmem.WordsPerLine
		worker := func(tid int) func() {
			return func() {
				// Increment the pair once, atomically, retrying on races.
				// The two Reads are not an atomic snapshot — a mixed pair
				// is a legitimate observation when the other thread's
				// PMwCAS lands in between — so a stale/mixed (va,vb)
				// surfaces as a failed Apply and a retry, never an error.
				for {
					va := p.Read(tid, a)
					vb := p.Read(tid, b)
					ok, err := p.Apply(tid, []pmwcas.Entry{
						{Addr: a, Old: va, New: va + 1},
						{Addr: b, Old: vb, New: vb + 1},
					})
					if err != nil {
						t.Errorf("apply: %v", err)
						return
					}
					if ok {
						return
					}
				}
			}
		}
		return h, []func(){worker(0), worker(1)}
	}
	verify := func() error {
		va, vb := p.Read(0, a), p.Read(0, b)
		if va != 2 || vb != 2 {
			return fmt.Errorf("pair = (%d,%d), want (2,2)", va, vb)
		}
		return nil
	}
	maxSchedules := 0
	if testing.Short() {
		maxSchedules = 400
	}
	schedules, bad, err := Explore(ExploreConfig{MaxPreemptions: 2, MaxSchedules: maxSchedules}, setup, verify)
	if err != nil {
		t.Fatalf("schedule with preemptions at %v breaks PMwCAS atomicity: %v", bad, err)
	}
	t.Logf("verified %d schedules", schedules)
}

// TestCWEQueueUnderSchedules runs the General CASWithEffect queue (the
// variant whose X words go through full RDCSS installation) under every
// single-preemption schedule of two concurrent detectable pairs, checking
// value conservation and resolution consistency.
func TestCWEQueueUnderSchedules(t *testing.T) {
	var q *cwe.Queue
	results := make([]struct {
		deq   uint64
		gotIt bool
	}, 2)
	setup := func() (*pmem.Heap, []func()) {
		h := newHeap(t)
		var err error
		q, err = cwe.New(h, 0, cwe.Config{
			Threads: 2, NodesPerThread: 8, ExtraNodes: 4, DescriptorsPerThread: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		mk := func(tid int, v uint64) func() {
			return func() {
				results[tid].gotIt = false
				if err := q.PrepEnqueue(tid, v); err != nil {
					t.Errorf("prep: %v", err)
					return
				}
				if err := q.ExecEnqueue(tid); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
				q.PrepDequeue(tid)
				got, ok, err := q.ExecDequeue(tid)
				if err != nil {
					t.Errorf("deq: %v", err)
					return
				}
				results[tid].deq, results[tid].gotIt = got, ok
			}
		}
		return h, []func(){mk(0, 100), mk(1, 200)}
	}
	verify := func() error {
		seen := map[uint64]int{}
		for tid := 0; tid < 2; tid++ {
			if results[tid].gotIt {
				seen[results[tid].deq]++
			}
			// The resolution must agree with what the operation returned.
			res := q.Resolve(tid)
			if !res.IsDequeue || !res.Executed {
				return fmt.Errorf("tid %d: resolution %+v does not reflect the completed dequeue", tid, res)
			}
			if res.Empty != !results[tid].gotIt {
				return fmt.Errorf("tid %d: resolution empty=%v but op returned ok=%v", tid, res.Empty, results[tid].gotIt)
			}
			if results[tid].gotIt && res.Val != results[tid].deq {
				return fmt.Errorf("tid %d: resolution value %d but op returned %d", tid, res.Val, results[tid].deq)
			}
		}
		for {
			v, ok := q.Dequeue(0)
			if !ok {
				break
			}
			seen[v]++
		}
		if seen[100] != 1 || seen[200] != 1 || len(seen) != 2 {
			return fmt.Errorf("conservation violated: %v", seen)
		}
		return nil
	}
	schedules, bad, err := Explore(ExploreConfig{MaxPreemptions: 1}, setup, verify)
	if err != nil {
		t.Fatalf("schedule with preemptions at %v breaks the CWE queue: %v", bad, err)
	}
	t.Logf("verified %d schedules", schedules)
}
