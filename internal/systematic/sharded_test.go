package systematic

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/dss"
	"repro/internal/pmem"
	"repro/internal/sharded"
	"repro/internal/spec"
)

// shardRecorder fans shard-level tracer events into one recorder per
// shard, so each shard's history can be checked independently.
type shardRecorder struct {
	recs []*check.Recorder
}

func (r *shardRecorder) OpBegin(shard, tid int, op spec.Op)   { r.recs[shard].Begin(tid, op) }
func (r *shardRecorder) OpEnd(shard, tid int, resp spec.Resp) { r.recs[shard].End(tid, resp) }

// TestShardedQueueUnderSchedules model-checks the 2-thread, 2-shard
// enqueue/dequeue race under a preemption bound of 2: one thread runs a
// detectable enqueue pair, the other a detectable dequeue pair, and every
// schedule must leave each shard's traced history strictly linearizable
// w.r.t. D⟨queue⟩ and conserve values exactly once across the
// composition. The interesting interleavings are the ones that preempt
// inside the dispatch-cursor update (between the shard prep's X persist
// and the cursor persist) and inside the dequeue's cross-shard scan.
func TestShardedQueueUnderSchedules(t *testing.T) {
	maxSchedules := 5000
	if testing.Short() {
		maxSchedules = 300
	}
	var q *sharded.Front
	var tr *shardRecorder
	var deqGot []uint64
	setup := func() (*pmem.Heap, []func()) {
		h := newHeap(t)
		var err error
		q, err = sharded.New(h, 0, dss.QueueType, sharded.Config{
			Shards: 2, Threads: 2, NodesPerThread: 8, ExtraNodes: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr = &shardRecorder{recs: []*check.Recorder{check.NewRecorder(), check.NewRecorder()}}
		q.SetTracer(tr)
		deqGot = nil
		enqueuer := func() {
			for _, v := range []uint64{100, 200} {
				if err := q.Prep(0, dss.Op{Kind: dss.Insert, Arg: v}); err != nil {
					t.Errorf("prep: %v", err)
					return
				}
				if _, err := q.Exec(0); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}
		dequeuer := func() {
			for i := 0; i < 2; i++ {
				if err := q.Prep(1, dss.Op{Kind: dss.Remove}); err != nil {
					t.Errorf("prep: %v", err)
					return
				}
				if resp, err := q.Exec(1); err == nil && resp.Kind == dss.Val {
					deqGot = append(deqGot, resp.Val)
				}
			}
		}
		return h, []func(){enqueuer, dequeuer}
	}
	verify := func() error {
		// Resolve each process through its persisted route, into the
		// route shard's history (the only shard holding its record).
		for tid := 0; tid < 2; tid++ {
			if s := q.Route(tid); s >= 0 {
				tr.recs[s].Begin(tid, spec.ResolveOp())
				op, resp, ok := q.Resolve(tid)
				tr.recs[s].End(tid, dss.QueueType.ResolveResp(op, resp, ok))
			}
		}
		// Drain shard by shard, recording into the shard histories and
		// collecting the leftovers for conservation.
		var left []uint64
		for s := 0; s < 2; s++ {
			for {
				tr.recs[s].Begin(0, spec.Dequeue())
				resp, err := q.Shard(s).Invoke(0, dss.Op{Kind: dss.Remove})
				if err != nil {
					return fmt.Errorf("shard %d drain: %w", s, err)
				}
				if resp.Kind == dss.Val {
					tr.recs[s].End(0, spec.ValResp(resp.Val))
					left = append(left, resp.Val)
				} else {
					tr.recs[s].End(0, spec.EmptyResp())
					break
				}
			}
		}
		q.SetTracer(nil)
		seen := map[uint64]int{}
		for _, v := range deqGot {
			seen[v]++
		}
		for _, v := range left {
			seen[v]++
		}
		if seen[100] != 1 || seen[200] != 1 || len(seen) != 2 {
			return fmt.Errorf("values not conserved exactly once: dequeued %v, drained %v", deqGot, left)
		}
		for s := 0; s < 2; s++ {
			hist := tr.recs[s].History()
			d := spec.Detectable(spec.NewQueue(), 2)
			if r := check.StrictlyLinearizable(d, hist); !r.OK {
				return fmt.Errorf("shard %d history not linearizable:\n%s", s, check.FormatHistory(hist))
			}
		}
		return nil
	}
	schedules, bad, err := Explore(ExploreConfig{MaxPreemptions: 2, MaxSchedules: maxSchedules}, setup, verify)
	if err != nil {
		t.Fatalf("schedule with preemptions at %v violates the sharded composition: %v", bad, err)
	}
	t.Logf("verified %d schedules", schedules)
}
