package systematic

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/pmem"
	"repro/internal/sharded"
	"repro/internal/spec"
)

// shardRecorder fans shard-level tracer events into one recorder per
// shard, so each shard's history can be checked independently.
type shardRecorder struct {
	recs []*check.Recorder
}

func (r *shardRecorder) OpBegin(shard, tid int, op spec.Op)    { r.recs[shard].Begin(tid, op) }
func (r *shardRecorder) OpEnd(shard, tid int, resp spec.Resp) { r.recs[shard].End(tid, resp) }

// TestShardedQueueUnderSchedules model-checks the 2-thread, 2-shard
// enqueue/dequeue race under a preemption bound of 2: one thread runs a
// detectable enqueue pair, the other a detectable dequeue pair, and every
// schedule must leave each shard's traced history strictly linearizable
// w.r.t. D⟨queue⟩ and conserve values exactly once across the
// composition. The interesting interleavings are the ones that preempt
// inside the dispatch-cursor update (between the shard prep's X persist
// and the cursor persist) and inside the dequeue's cross-shard scan.
func TestShardedQueueUnderSchedules(t *testing.T) {
	maxSchedules := 5000
	if testing.Short() {
		maxSchedules = 300
	}
	var q *sharded.Queue
	var tr *shardRecorder
	var deqGot []uint64
	setup := func() (*pmem.Heap, []func()) {
		h := newHeap(t)
		var err error
		q, err = sharded.New(h, 0, sharded.Config{
			Shards: 2, Threads: 2, NodesPerThread: 8, ExtraNodes: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr = &shardRecorder{recs: []*check.Recorder{check.NewRecorder(), check.NewRecorder()}}
		q.SetTracer(tr)
		deqGot = nil
		enqueuer := func() {
			for _, v := range []uint64{100, 200} {
				if err := q.PrepEnqueue(0, v); err != nil {
					t.Errorf("prep: %v", err)
					return
				}
				q.ExecEnqueue(0)
			}
		}
		dequeuer := func() {
			for i := 0; i < 2; i++ {
				q.PrepDequeue(1)
				if v, ok := q.ExecDequeue(1); ok {
					deqGot = append(deqGot, v)
				}
			}
		}
		return h, []func(){enqueuer, dequeuer}
	}
	verify := func() error {
		// Resolve each process through its persisted route, into the
		// route shard's history (the only shard holding its record).
		for tid := 0; tid < 2; tid++ {
			if s := q.Route(tid); s >= 0 {
				tr.recs[s].Begin(tid, spec.ResolveOp())
				tr.recs[s].End(tid, q.Resolve(tid).Resp())
			}
		}
		// Drain shard by shard, recording into the shard histories and
		// collecting the leftovers for conservation.
		var left []uint64
		for s := 0; s < 2; s++ {
			for {
				tr.recs[s].Begin(0, spec.Dequeue())
				v, ok := q.Shard(s).Dequeue(0)
				if ok {
					tr.recs[s].End(0, spec.ValResp(v))
					left = append(left, v)
				} else {
					tr.recs[s].End(0, spec.EmptyResp())
					break
				}
			}
		}
		q.SetTracer(nil)
		seen := map[uint64]int{}
		for _, v := range deqGot {
			seen[v]++
		}
		for _, v := range left {
			seen[v]++
		}
		if seen[100] != 1 || seen[200] != 1 || len(seen) != 2 {
			return fmt.Errorf("values not conserved exactly once: dequeued %v, drained %v", deqGot, left)
		}
		for s := 0; s < 2; s++ {
			hist := tr.recs[s].History()
			d := spec.Detectable(spec.NewQueue(), 2)
			if r := check.StrictlyLinearizable(d, hist); !r.OK {
				return fmt.Errorf("shard %d history not linearizable:\n%s", s, check.FormatHistory(hist))
			}
		}
		return nil
	}
	schedules, bad, err := Explore(ExploreConfig{MaxPreemptions: 2, MaxSchedules: maxSchedules}, setup, verify)
	if err != nil {
		t.Fatalf("schedule with preemptions at %v violates the sharded composition: %v", bad, err)
	}
	t.Logf("verified %d schedules", schedules)
}

// TestGoidGrowsTruncatedBuffer forces the initial stack-header read to
// truncate mid-header and checks that goid grows the buffer and still
// parses the id, instead of panicking (the hardening this PR adds).
func TestGoidGrowsTruncatedBuffer(t *testing.T) {
	reference := goid()
	old := goidBuf
	goidBuf = 8 // too small for "goroutine N [running]:"
	defer func() { goidBuf = old }()
	if got := goid(); got != reference {
		t.Fatalf("goid with truncated initial buffer = %d, want %d", got, reference)
	}
}
