// Package systematic is a stateless model checker for the concurrent
// algorithms in this repository: it runs worker goroutines under a
// cooperative scheduler attached to the heap's step gate, so every
// primitive memory operation is a controlled scheduling point, and it
// enumerates thread interleavings exhaustively under a preemption bound
// (Musuvathi & Qadeer's context-bounding insight: almost all concurrency
// bugs manifest within very few preemptions).
//
// The crash-point sweeps verify recovery along every *sequential* prefix;
// this package covers the orthogonal axis — helping paths, CAS races, and
// lock-free retries that only appear under specific interleavings — with
// deterministic, replayable schedules instead of stress-test luck.
package systematic

import (
	"fmt"
	"sync"

	"repro/internal/goid"
	"repro/internal/pmem"
)

// Controller schedules a set of worker goroutines one-at-a-time over a
// heap's step gate according to a preemption schedule.
type Controller struct {
	h *pmem.Heap

	mu     sync.Mutex
	ids    map[uint64]int
	resume []chan struct{}

	parkedCh chan int
	doneCh   chan int
}

// Run executes the workers under the schedule: exactly one worker runs at
// a time; at the event indices listed in preemptAt the scheduler switches
// to the next runnable worker (round-robin), otherwise the current worker
// continues until it finishes. It returns the total number of scheduling
// events (gate crossings), which callers use to enumerate schedules.
//
// The heap must be Tracked and quiescent; Run installs and removes the
// step gate itself.
func Run(h *pmem.Heap, workers []func(), preemptAt map[int]bool) int {
	c := &Controller{
		h:        h,
		ids:      map[uint64]int{},
		resume:   make([]chan struct{}, len(workers)),
		parkedCh: make(chan int),
		doneCh:   make(chan int),
	}
	for i := range workers {
		c.resume[i] = make(chan struct{})
	}
	h.SetStepGate(c.gate)
	defer h.SetStepGate(nil)

	running := make([]bool, len(workers)) // live (not finished)
	for i, w := range workers {
		running[i] = true
		go func(i int, w func()) {
			c.mu.Lock()
			c.ids[goid.ID()] = i
			c.mu.Unlock()
			// Park immediately so startup is deterministic: every worker
			// begins at the same well-defined point.
			c.parkedCh <- i
			<-c.resume[i]
			defer func() { c.doneCh <- i }()
			w()
		}(i, w)
	}
	// Wait for all workers to reach their initial park.
	for range workers {
		<-c.parkedCh
	}

	events := 0
	current := 0
	findNext := func(from int) int {
		for d := 1; d <= len(workers); d++ {
			cand := (from + d) % len(workers)
			if running[cand] {
				return cand
			}
		}
		return -1
	}
	if !running[current] {
		current = findNext(0)
	}
	live := len(workers)
	for live > 0 {
		c.resume[current] <- struct{}{}
		select {
		case idx := <-c.parkedCh:
			if idx != current {
				panic("systematic: a non-scheduled worker took a step")
			}
			events++
			if preemptAt[events] {
				if next := findNext(current); next >= 0 {
					current = next
				}
			}
		case idx := <-c.doneCh:
			if idx != current {
				panic("systematic: a non-scheduled worker finished")
			}
			running[idx] = false
			live--
			if live > 0 {
				current = findNext(idx)
			}
		}
	}
	return events
}

// gate is the heap hook: registered workers park and wait for their turn;
// goroutines the controller does not know (test setup, draining) pass
// through untouched. The step kind is irrelevant here — the controller
// schedules interleavings, not costs.
func (c *Controller) gate(pmem.StepKind) {
	c.mu.Lock()
	idx, ok := c.ids[goid.ID()]
	c.mu.Unlock()
	if !ok {
		return
	}
	c.parkedCh <- idx
	<-c.resume[idx]
}

// ExploreConfig bounds an exploration.
type ExploreConfig struct {
	// MaxPreemptions bounds the context switches per schedule (≤ 2 covers
	// the vast majority of concurrency bugs and keeps the schedule count
	// quadratic).
	MaxPreemptions int
	// MaxSchedules caps the total schedules (0 = unlimited).
	MaxSchedules int
}

// Explore enumerates schedules up to the preemption bound. For each
// schedule it calls setup to build a fresh system (returning the heap and
// the workers), runs the workers under the schedule, and then calls
// verify; a non-nil error aborts exploration and is returned together
// with the offending schedule. The total number of schedules run is
// returned.
func Explore(cfg ExploreConfig, setup func() (*pmem.Heap, []func()), verify func() error) (int, []int, error) {
	if cfg.MaxPreemptions < 0 || cfg.MaxPreemptions > 2 {
		return 0, nil, fmt.Errorf("systematic: MaxPreemptions %d out of [0,2]", cfg.MaxPreemptions)
	}
	schedules := 0
	runOne := func(preempts []int) (int, error) {
		schedules++
		set := map[int]bool{}
		for _, p := range preempts {
			set[p] = true
		}
		h, workers := setup()
		n := Run(h, workers, set)
		return n, verify()
	}

	// Depth 0: the no-preemption schedule establishes the event horizon.
	n0, err := runOne(nil)
	if err != nil {
		return schedules, nil, err
	}
	if cfg.MaxPreemptions == 0 {
		return schedules, nil, nil
	}
	for i := 1; i <= n0; i++ {
		if cfg.MaxSchedules > 0 && schedules >= cfg.MaxSchedules {
			return schedules, nil, nil
		}
		ni, err := runOne([]int{i})
		if err != nil {
			return schedules, []int{i}, err
		}
		if cfg.MaxPreemptions < 2 {
			continue
		}
		for j := i + 1; j <= ni; j++ {
			if cfg.MaxSchedules > 0 && schedules >= cfg.MaxSchedules {
				return schedules, nil, nil
			}
			if _, err := runOne([]int{i, j}); err != nil {
				return schedules, []int{i, j}, err
			}
		}
	}
	return schedules, nil, nil
}
