package systematic

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/spec"
	"repro/internal/stack"
)

func newHeap(t *testing.T) *pmem.Heap {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 14, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSchedulerIsDeterministic(t *testing.T) {
	// The same schedule must produce the same interleaving: a racy
	// read-modify-write pair gives schedule-dependent results, so equal
	// results across repeats of each schedule demonstrate determinism.
	outcome := func(preempt map[int]bool) (uint64, int) {
		h := newHeap(t)
		a := h.MustAlloc(8)
		worker := func() {
			v := h.Load(a) // racy: load
			h.Store(a, v+1)
		}
		n := Run(h, []func(){worker, worker}, preempt)
		return h.Load(a), n
	}
	for _, preempt := range []map[int]bool{nil, {1: true}, {2: true}, {1: true, 3: true}} {
		v1, n1 := outcome(preempt)
		v2, n2 := outcome(preempt)
		if v1 != v2 || n1 != n2 {
			t.Fatalf("schedule %v not deterministic: (%d,%d) vs (%d,%d)", preempt, v1, n1, v2, n2)
		}
	}
}

func TestExplorerFindsARace(t *testing.T) {
	// A deliberately broken counter (load; store(load+1)) loses an update
	// under some interleaving; the explorer must find such a schedule.
	var h *pmem.Heap
	var a pmem.Addr
	setup := func() (*pmem.Heap, []func()) {
		h = newHeap(t)
		a = h.MustAlloc(8)
		worker := func() {
			v := h.Load(a)
			h.Store(a, v+1)
		}
		return h, []func(){worker, worker}
	}
	verify := func() error {
		if got := h.Load(a); got != 2 {
			return fmt.Errorf("lost update: counter = %d", got)
		}
		return nil
	}
	schedules, bad, err := Explore(ExploreConfig{MaxPreemptions: 1}, setup, verify)
	if err == nil {
		t.Fatalf("explorer missed the lost-update race over %d schedules", schedules)
	}
	if len(bad) == 0 {
		t.Fatal("no witness schedule reported")
	}
	t.Logf("found lost update with preemptions at %v after %d schedules", bad, schedules)
}

func TestExploreConfigValidation(t *testing.T) {
	if _, _, err := Explore(ExploreConfig{MaxPreemptions: 3}, nil, nil); err == nil {
		t.Fatal("accepted preemption bound 3")
	}
}

// TestDSSQueueUnderAllSchedules is the systematic analogue of Theorem 1's
// concurrency side: two threads each run one detectable enqueue/dequeue
// pair; every schedule with up to two preemptions is executed and each
// resulting history (including resolutions and the drain) is verified
// against D⟨queue⟩.
func TestDSSQueueUnderAllSchedules(t *testing.T) {
	maxSchedules := 0
	if testing.Short() {
		maxSchedules = 300
	}
	var q *core.Queue
	var rec *check.Recorder
	setup := func() (*pmem.Heap, []func()) {
		h := newHeap(t)
		var err error
		q, err = core.New(h, 0, core.Config{Threads: 2, NodesPerThread: 8, ExtraNodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		rec = check.NewRecorder()
		mk := func(tid int, v uint64) func() {
			return func() {
				rec.Begin(tid, spec.PrepOp(spec.Enqueue(v)))
				if err := q.PrepEnqueue(tid, v); err != nil {
					t.Errorf("prep: %v", err)
					return
				}
				rec.End(tid, spec.BottomResp())
				rec.Begin(tid, spec.ExecOp(spec.Enqueue(v)))
				q.ExecEnqueue(tid)
				rec.End(tid, spec.AckResp())
				rec.Begin(tid, spec.PrepOp(spec.Dequeue()))
				q.PrepDequeue(tid)
				rec.End(tid, spec.BottomResp())
				rec.Begin(tid, spec.ExecOp(spec.Dequeue()))
				if got, ok := q.ExecDequeue(tid); ok {
					rec.End(tid, spec.ValResp(got))
				} else {
					rec.End(tid, spec.EmptyResp())
				}
			}
		}
		return h, []func(){mk(0, 100), mk(1, 200)}
	}
	verify := func() error {
		for {
			rec.Begin(0, spec.Dequeue())
			v, ok := q.Dequeue(0)
			if ok {
				rec.End(0, spec.ValResp(v))
			} else {
				rec.End(0, spec.EmptyResp())
				break
			}
		}
		hist := rec.History()
		d := spec.Detectable(spec.NewQueue(), 2)
		if r := check.StrictlyLinearizable(d, hist); !r.OK {
			return fmt.Errorf("history not linearizable:\n%s", check.FormatHistory(hist))
		}
		return nil
	}
	schedules, bad, err := Explore(ExploreConfig{MaxPreemptions: 2, MaxSchedules: maxSchedules}, setup, verify)
	if err != nil {
		t.Fatalf("schedule with preemptions at %v violates D<queue>: %v", bad, err)
	}
	t.Logf("verified %d schedules", schedules)
}

// TestDSSStackUnderAllSchedules does the same for the stack extension
// (one preemption bound keeps the run fast; the marked-top helping path
// is exercised by the schedules that preempt between the mark and the
// unlink).
func TestDSSStackUnderAllSchedules(t *testing.T) {
	var s *stack.Stack
	var rec *check.Recorder
	setup := func() (*pmem.Heap, []func()) {
		h := newHeap(t)
		var err error
		s, err = stack.New(h, 0, stack.Config{Threads: 2, NodesPerThread: 8, ExtraNodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		rec = check.NewRecorder()
		mk := func(tid int, v uint64) func() {
			return func() {
				rec.Begin(tid, spec.PrepOp(spec.Push(v)))
				if err := s.PrepPush(tid, v); err != nil {
					t.Errorf("prep: %v", err)
					return
				}
				rec.End(tid, spec.BottomResp())
				rec.Begin(tid, spec.ExecOp(spec.Push(v)))
				s.ExecPush(tid)
				rec.End(tid, spec.AckResp())
				rec.Begin(tid, spec.PrepOp(spec.Pop()))
				s.PrepPop(tid)
				rec.End(tid, spec.BottomResp())
				rec.Begin(tid, spec.ExecOp(spec.Pop()))
				if got, ok := s.ExecPop(tid); ok {
					rec.End(tid, spec.ValResp(got))
				} else {
					rec.End(tid, spec.EmptyResp())
				}
			}
		}
		return h, []func(){mk(0, 100), mk(1, 200)}
	}
	verify := func() error {
		for {
			rec.Begin(0, spec.Pop())
			v, ok := s.Pop(0)
			if ok {
				rec.End(0, spec.ValResp(v))
			} else {
				rec.End(0, spec.EmptyResp())
				break
			}
		}
		hist := rec.History()
		d := spec.Detectable(spec.NewStack(), 2)
		if r := check.StrictlyLinearizable(d, hist); !r.OK {
			return fmt.Errorf("history not linearizable:\n%s", check.FormatHistory(hist))
		}
		return nil
	}
	bound := 2
	if testing.Short() {
		bound = 1
	}
	schedules, bad, err := Explore(ExploreConfig{MaxPreemptions: bound}, setup, verify)
	if err != nil {
		t.Fatalf("schedule with preemptions at %v violates D<stack>: %v", bad, err)
	}
	t.Logf("verified %d schedules", schedules)
}

// TestDSSQueueSchedulesWithCrash combines both exploration axes: under
// every single-preemption schedule, a crash is armed mid-workload; after
// recovery the resolutions close the interrupted operations and the full
// history must still be strictly linearizable w.r.t. D⟨queue⟩.
func TestDSSQueueSchedulesWithCrash(t *testing.T) {
	var q *core.Queue
	var rec *check.Recorder
	var heap *pmem.Heap
	setup := func() (*pmem.Heap, []func()) {
		heap = newHeap(t)
		var err error
		q, err = core.New(heap, 0, core.Config{Threads: 2, NodesPerThread: 8, ExtraNodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		rec = check.NewRecorder()
		heap.ArmCrash(45)
		mk := func(tid int, v uint64) func() {
			return func() {
				pmem.RunToCrash(func() {
					rec.Begin(tid, spec.PrepOp(spec.Enqueue(v)))
					if err := q.PrepEnqueue(tid, v); err != nil {
						return
					}
					rec.End(tid, spec.BottomResp())
					rec.Begin(tid, spec.ExecOp(spec.Enqueue(v)))
					q.ExecEnqueue(tid)
					rec.End(tid, spec.AckResp())
					rec.Begin(tid, spec.PrepOp(spec.Dequeue()))
					q.PrepDequeue(tid)
					rec.End(tid, spec.BottomResp())
					rec.Begin(tid, spec.ExecOp(spec.Dequeue()))
					if got, ok := q.ExecDequeue(tid); ok {
						rec.End(tid, spec.ValResp(got))
					} else {
						rec.End(tid, spec.EmptyResp())
					}
				})
			}
		}
		return heap, []func(){mk(0, 100), mk(1, 200)}
	}
	verify := func() error {
		if heap.Crashed() {
			rec.CrashAll()
			heap.Crash(pmem.NewRandomFates(7))
			q.Recover()
			for tid := 0; tid < 2; tid++ {
				rec.Begin(tid, spec.ResolveOp())
				rec.End(tid, q.Resolve(tid).Resp())
			}
		} else {
			heap.ArmCrash(0)
		}
		for {
			rec.Begin(0, spec.Dequeue())
			v, ok := q.Dequeue(0)
			if ok {
				rec.End(0, spec.ValResp(v))
			} else {
				rec.End(0, spec.EmptyResp())
				break
			}
		}
		hist := rec.History()
		d := spec.Detectable(spec.NewQueue(), 2)
		if r := check.StrictlyLinearizable(d, hist); !r.OK {
			return fmt.Errorf("history not linearizable:\n%s", check.FormatHistory(hist))
		}
		return nil
	}
	schedules, bad, err := Explore(ExploreConfig{MaxPreemptions: 1}, setup, verify)
	if err != nil {
		t.Fatalf("schedule with preemptions at %v violates D<queue> across a crash: %v", bad, err)
	}
	t.Logf("verified %d schedules, each with a mid-workload crash", schedules)
}
