package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newTestQueue(t *testing.T, threads int) (*Queue, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
	if err != nil {
		t.Fatalf("pmem.New: %v", err)
	}
	q, err := New(h, 0, Config{Threads: threads, NodesPerThread: 64, ExtraNodes: 16})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return q, h
}

// drain empties the queue with non-detectable dequeues and returns the
// values in FIFO order.
func drain(t *testing.T, q *Queue, tid int) []uint64 {
	t.Helper()
	var out []uint64
	for i := 0; i < 10_000; i++ {
		v, ok := q.Dequeue(tid)
		if !ok {
			return out
		}
		out = append(out, v)
	}
	t.Fatal("drain did not terminate; queue corrupted?")
	return nil
}

func mustEnqueue(t *testing.T, q *Queue, tid int, v uint64) {
	t.Helper()
	if err := q.Enqueue(tid, v); err != nil {
		t.Fatalf("Enqueue(%d): %v", v, err)
	}
}

func TestNewValidation(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 12, Mode: pmem.Tracked})
	if _, err := New(h, 0, Config{Threads: 0, NodesPerThread: 1, ExtraNodes: 1}); err == nil {
		t.Fatal("accepted zero threads")
	}
	if _, err := New(h, 0, Config{Threads: 1, NodesPerThread: 1, ExtraNodes: 0}); err == nil {
		t.Fatal("accepted pool with no room for sentinel")
	}
}

func TestNonDetectableFIFO(t *testing.T) {
	q, _ := newTestQueue(t, 2)
	for v := uint64(1); v <= 5; v++ {
		mustEnqueue(t, q, 0, v)
	}
	got := drain(t, q, 1)
	want := []uint64{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestDequeueEmpty(t *testing.T) {
	q, _ := newTestQueue(t, 1)
	if v, ok := q.Dequeue(0); ok {
		t.Fatalf("Dequeue on empty returned (%d, true)", v)
	}
	mustEnqueue(t, q, 0, 9)
	if v, ok := q.Dequeue(0); !ok || v != 9 {
		t.Fatalf("Dequeue = (%d,%v), want (9,true)", v, ok)
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("queue not empty after draining")
	}
}

func TestDetectableRoundTrip(t *testing.T) {
	q, _ := newTestQueue(t, 1)
	if err := q.PrepEnqueue(0, 7); err != nil {
		t.Fatal(err)
	}
	q.ExecEnqueue(0)
	res := q.Resolve(0)
	if res.Op != OpEnqueue || res.Arg != 7 || !res.Executed {
		t.Fatalf("resolve after exec-enqueue = %+v", res)
	}
	q.PrepDequeue(0)
	v, ok := q.ExecDequeue(0)
	if !ok || v != 7 {
		t.Fatalf("ExecDequeue = (%d,%v), want (7,true)", v, ok)
	}
	res = q.Resolve(0)
	if res.Op != OpDequeue || !res.Executed || res.Empty || res.Val != 7 {
		t.Fatalf("resolve after exec-dequeue = %+v", res)
	}
}

func TestResolveNothingPrepared(t *testing.T) {
	q, _ := newTestQueue(t, 2)
	res := q.Resolve(1)
	if res.Op != OpNone {
		t.Fatalf("resolve with no prep = %+v, want OpNone", res)
	}
	// Non-detectable traffic must not perturb it (Axiom 4 has no side
	// effect on A or R).
	mustEnqueue(t, q, 0, 1)
	q.Dequeue(0)
	if res := q.Resolve(1); res.Op != OpNone {
		t.Fatalf("resolve after base ops = %+v, want OpNone", res)
	}
}

func TestResolvePreparedNotExecuted(t *testing.T) {
	q, _ := newTestQueue(t, 1)
	if err := q.PrepEnqueue(0, 5); err != nil {
		t.Fatal(err)
	}
	res := q.Resolve(0)
	if res.Op != OpEnqueue || res.Arg != 5 || res.Executed {
		t.Fatalf("resolve = %+v, want prepared unexecuted enqueue(5)", res)
	}
	if got := drain(t, q, 0); len(got) != 0 {
		t.Fatalf("unexecuted enqueue leaked value: %v", got)
	}
}

func TestResolveEmptyDequeue(t *testing.T) {
	q, _ := newTestQueue(t, 1)
	q.PrepDequeue(0)
	if _, ok := q.ExecDequeue(0); ok {
		t.Fatal("dequeue on empty succeeded")
	}
	res := q.Resolve(0)
	if res.Op != OpDequeue || !res.Executed || !res.Empty {
		t.Fatalf("resolve = %+v, want executed EMPTY dequeue", res)
	}
}

func TestResolveIsIdempotent(t *testing.T) {
	q, _ := newTestQueue(t, 1)
	if err := q.PrepEnqueue(0, 3); err != nil {
		t.Fatal(err)
	}
	q.ExecEnqueue(0)
	first := q.Resolve(0)
	for i := 0; i < 5; i++ {
		if got := q.Resolve(0); got != first {
			t.Fatalf("resolve #%d = %+v, want %+v", i, got, first)
		}
	}
}

func TestExecEnqueueTwiceIsNoop(t *testing.T) {
	q, _ := newTestQueue(t, 1)
	if err := q.PrepEnqueue(0, 4); err != nil {
		t.Fatal(err)
	}
	q.ExecEnqueue(0)
	q.ExecEnqueue(0) // Axiom 2 precondition fails; must not double-link
	got := drain(t, q, 0)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("drained %v, want [4]", got)
	}
}

func TestExecEnqueueWithoutPrepIsNoop(t *testing.T) {
	q, _ := newTestQueue(t, 1)
	q.ExecEnqueue(0)
	if got := drain(t, q, 0); len(got) != 0 {
		t.Fatalf("exec without prep enqueued %v", got)
	}
}

func TestRePrepareReclaimsUnlinkedNode(t *testing.T) {
	q, _ := newTestQueue(t, 1)
	before := q.FreeNodes()
	// Prepare repeatedly without executing: each prep may consume a node
	// but must recycle the previous, never-linked one.
	for i := 0; i < 50; i++ {
		if err := q.PrepEnqueue(0, uint64(i)); err != nil {
			t.Fatalf("prep #%d: %v", i, err)
		}
	}
	after := q.FreeNodes()
	if before-after > 2 {
		t.Fatalf("repeated prep leaked nodes: free %d -> %d", before, after)
	}
}

func TestPoolExhaustionReturnsError(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 14, Mode: pmem.Tracked})
	q, err := New(h, 0, Config{Threads: 1, NodesPerThread: 2, ExtraNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	var got error
	for i := 0; i < 10; i++ {
		if err := q.Enqueue(0, uint64(i)); err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, ErrNoNodes) {
		t.Fatalf("exhaustion error = %v, want ErrNoNodes", got)
	}
}

func TestNodesRecycleThroughEBR(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 14, Mode: pmem.Tracked})
	// Tiny pool: long workloads only succeed if dequeued nodes recycle.
	q, err := New(h, 0, Config{Threads: 1, NodesPerThread: 8, ExtraNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := q.Enqueue(0, uint64(i)); err != nil {
			t.Fatalf("enqueue #%d: %v (nodes not recycling)", i, err)
		}
		if v, ok := q.Dequeue(0); !ok || v != uint64(i) {
			t.Fatalf("dequeue #%d = (%d,%v)", i, v, ok)
		}
	}
}

func TestOpNameString(t *testing.T) {
	if OpNone.String() != "none" || OpEnqueue.String() != "enqueue" || OpDequeue.String() != "dequeue" {
		t.Fatal("unexpected OpName strings")
	}
	if OpName(9).String() == "" {
		t.Fatal("empty string for invalid OpName")
	}
}

func TestResolutionResp(t *testing.T) {
	tests := []struct {
		name string
		r    Resolution
		want string
	}{
		{"none", Resolution{Op: OpNone}, "(⊥, ⊥)"},
		{"enq pending", Resolution{Op: OpEnqueue, Arg: 5}, "(enqueue(5), ⊥)"},
		{"enq done", Resolution{Op: OpEnqueue, Arg: 5, Executed: true}, "(enqueue(5), OK)"},
		{"deq pending", Resolution{Op: OpDequeue}, "(dequeue(0), ⊥)"},
		{"deq done", Resolution{Op: OpDequeue, Executed: true, Val: 9}, "(dequeue(0), 9)"},
		{"deq empty", Resolution{Op: OpDequeue, Executed: true, Empty: true}, "(dequeue(0), EMPTY)"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Resp().String(); got != tt.want {
				t.Fatalf("Resp() = %s, want %s", got, tt.want)
			}
		})
	}
}

func TestConcurrentPairsExactlyOnce(t *testing.T) {
	const threads = 4
	const pairs = 500
	q, _ := newTestQueue(t, threads)
	// Seed like the paper's benchmark.
	for i := 0; i < 16; i++ {
		mustEnqueue(t, q, 0, uint64(1_000_000+i))
	}
	var wg sync.WaitGroup
	dequeued := make([][]uint64, threads)
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < pairs; i++ {
				v := uint64(tid)<<32 | uint64(i)
				if err := q.Enqueue(tid, v); err != nil {
					t.Errorf("tid %d enqueue: %v", tid, err)
					return
				}
				if got, ok := q.Dequeue(tid); ok {
					dequeued[tid] = append(dequeued[tid], got)
				}
			}
		}(tid)
	}
	wg.Wait()
	rest := drain(t, q, 0)
	seen := map[uint64]int{}
	total := 0
	for _, d := range dequeued {
		for _, v := range d {
			seen[v]++
			total += 1
		}
	}
	for _, v := range rest {
		seen[v]++
		total++
	}
	if total != threads*pairs+16 {
		t.Fatalf("value conservation violated: saw %d values, want %d", total, threads*pairs+16)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d dequeued %d times", v, n)
		}
	}
}

func TestConcurrentDetectablePairs(t *testing.T) {
	const threads = 4
	const pairs = 300
	q, _ := newTestQueue(t, threads)
	for i := 0; i < 16; i++ {
		mustEnqueue(t, q, 0, uint64(1_000_000+i))
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[uint64]int{}
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < pairs; i++ {
				v := uint64(tid)<<32 | uint64(i)
				if err := q.PrepEnqueue(tid, v); err != nil {
					t.Errorf("tid %d prep: %v", tid, err)
					return
				}
				q.ExecEnqueue(tid)
				if res := q.Resolve(tid); !res.Executed || res.Op != OpEnqueue || res.Arg != v {
					t.Errorf("tid %d: bad enqueue resolution %+v", tid, res)
					return
				}
				q.PrepDequeue(tid)
				if got, ok := q.ExecDequeue(tid); ok {
					mu.Lock()
					seen[got]++
					mu.Unlock()
				}
			}
		}(tid)
	}
	wg.Wait()
	for _, v := range drain(t, q, 0) {
		seen[v]++
	}
	if len(seen) != threads*pairs+16 {
		t.Fatalf("saw %d distinct values, want %d", len(seen), threads*pairs+16)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d dequeued %d times", v, n)
		}
	}
}

// legalOutcome describes one legal (remaining queue contents, resolution)
// pair for the deterministic crash sweep.
type legalOutcome struct {
	queue string
	res   Resolution
}

func outcomeKey(queue []uint64, res Resolution) string {
	return fmt.Sprintf("%v/%+v", queue, res)
}

// TestCrashSweepDetectableEnqueueDequeue is the deterministic heart of the
// Theorem 1 verification at unit level: a single thread runs
// prep-enqueue(10); exec-enqueue; prep-dequeue; exec-dequeue on a queue
// seeded with [1 2], and a crash is injected at every primitive memory
// step, under every adversary. After recovery, the surviving queue state
// and the resolution must be one of the outcomes permitted by strict
// linearizability over D⟨queue⟩.
func TestCrashSweepDetectableEnqueueDequeue(t *testing.T) {
	legal := map[string]bool{}
	add := func(qs []uint64, rs ...Resolution) {
		for _, r := range rs {
			legal[outcomeKey(qs, r)] = true
		}
	}
	// Queue [1 2]: before prep persisted, or prep persisted but exec
	// without effect.
	add([]uint64{1, 2},
		Resolution{Op: OpNone},
		Resolution{Op: OpEnqueue, Arg: 10})
	// Queue [1 2 10]: enqueue took effect (recovery completes the tag), up
	// to dequeue that did not take effect.
	add([]uint64{1, 2, 10},
		Resolution{Op: OpEnqueue, Arg: 10, Executed: true},
		Resolution{Op: OpDequeue})
	// Queue [2 10]: dequeue of 1 took effect.
	add([]uint64{2, 10},
		Resolution{Op: OpDequeue, Executed: true, Val: 1})

	for name, adv := range map[string]pmem.Adversary{
		"drop": pmem.DropAll{},
		"keep": pmem.KeepAll{},
		"rand": pmem.NewRandomFates(7),
	} {
		t.Run(name, func(t *testing.T) {
			for step := uint64(1); ; step++ {
				q, h := newTestQueue(t, 1)
				mustEnqueue(t, q, 0, 1)
				mustEnqueue(t, q, 0, 2)
				h.ArmCrash(step)
				crashed := pmem.RunToCrash(func() {
					if err := q.PrepEnqueue(0, 10); err != nil {
						t.Fatal(err)
					}
					q.ExecEnqueue(0)
					q.PrepDequeue(0)
					q.ExecDequeue(0)
				})
				if !crashed {
					if step < 10 {
						t.Fatalf("workload finished in under %d steps?", step)
					}
					return // swept every step
				}
				h.Crash(adv)
				q.Recover()
				res := q.Resolve(0)
				rest := drain(t, q, 0)
				if !legal[outcomeKey(rest, res)] {
					t.Fatalf("step %d: illegal outcome queue=%v res=%+v", step, rest, res)
				}
			}
		})
	}
}

// TestCrashSweepEmptyDequeue sweeps crashes over a detectable dequeue on an
// empty queue.
func TestCrashSweepEmptyDequeue(t *testing.T) {
	legal := map[string]bool{}
	add := func(qs []uint64, rs ...Resolution) {
		for _, r := range rs {
			legal[outcomeKey(qs, r)] = true
		}
	}
	add(nil,
		Resolution{Op: OpNone},
		Resolution{Op: OpDequeue},
		Resolution{Op: OpDequeue, Executed: true, Empty: true})

	for _, adv := range pmem.Adversaries(3) {
		for step := uint64(1); ; step++ {
			q, h := newTestQueue(t, 1)
			h.ArmCrash(step)
			crashed := pmem.RunToCrash(func() {
				q.PrepDequeue(0)
				q.ExecDequeue(0)
			})
			if !crashed {
				break
			}
			h.Crash(adv)
			q.Recover()
			res := q.Resolve(0)
			rest := drain(t, q, 0)
			if !legal[outcomeKey(rest, res)] {
				t.Fatalf("step %d: illegal outcome queue=%v res=%+v", step, rest, res)
			}
		}
	}
}

// TestCrashSweepNonDetectableOps verifies strict linearizability of the
// plain operations: after a crash at any step, the queue holds a prefix-
// consistent state and never duplicates or invents values.
func TestCrashSweepNonDetectableOps(t *testing.T) {
	legalStates := map[string]bool{
		outcomeKey([]uint64{1, 2}, Resolution{}):     true,
		outcomeKey([]uint64{1, 2, 10}, Resolution{}): true,
		outcomeKey([]uint64{2, 10}, Resolution{}):    true,
	}
	for _, adv := range pmem.Adversaries(5) {
		for step := uint64(1); ; step++ {
			q, h := newTestQueue(t, 1)
			mustEnqueue(t, q, 0, 1)
			mustEnqueue(t, q, 0, 2)
			h.ArmCrash(step)
			crashed := pmem.RunToCrash(func() {
				if err := q.Enqueue(0, 10); err != nil {
					t.Fatal(err)
				}
				q.Dequeue(0)
			})
			if !crashed {
				break
			}
			h.Crash(adv)
			q.Recover()
			rest := drain(t, q, 0)
			if !legalStates[outcomeKey(rest, Resolution{})] {
				t.Fatalf("step %d: illegal queue state %v", step, rest)
			}
			// A non-detectable run must leave A[p] empty.
			if res := q.Resolve(0); res.Op != OpNone {
				t.Fatalf("step %d: non-detectable ops set X: %+v", step, res)
			}
		}
	}
}

func TestRecoveryFixesLaggingTail(t *testing.T) {
	// Crash immediately after an enqueue's link CAS: tail is stale in the
	// persisted image. Recovery must set tail to the last reachable node
	// so subsequent enqueues work.
	for step := uint64(1); ; step++ {
		q, h := newTestQueue(t, 1)
		mustEnqueue(t, q, 0, 1)
		h.ArmCrash(step)
		crashed := pmem.RunToCrash(func() {
			_ = q.Enqueue(0, 2)
			_ = q.Enqueue(0, 3)
		})
		if !crashed {
			return
		}
		h.Crash(pmem.DropAll{})
		q.Recover()
		mustEnqueue(t, q, 0, 99)
		rest := drain(t, q, 0)
		if len(rest) == 0 || rest[len(rest)-1] != 99 {
			t.Fatalf("step %d: enqueue after recovery lost: %v", step, rest)
		}
		if rest[0] != 1 {
			t.Fatalf("step %d: persisted prefix lost: %v", step, rest)
		}
	}
}

func TestRecoverySweepRestoresFreeNodes(t *testing.T) {
	q, h := newTestQueue(t, 2)
	for i := 0; i < 20; i++ {
		mustEnqueue(t, q, 0, uint64(i))
	}
	for i := 0; i < 20; i++ {
		q.Dequeue(1)
	}
	h.CrashNow()
	h.Crash(pmem.DropAll{})
	q.Recover()
	// Post-crash the queue holds some prefix of values; everything else
	// (including nodes stranded in EBR limbo) must be free again.
	rest := drain(t, q, 0)
	total := q.pool.Capacity()
	free := q.FreeNodes()
	// Live: sentinel + remaining values + up to 2 pinned per thread.
	maxLive := 1 + len(rest) + 2*q.Threads()
	if free < total-maxLive {
		t.Fatalf("sweep reclaimed too little: free %d of %d, %d values live", free, total, len(rest))
	}
}

func TestRecoveryIsRestartable(t *testing.T) {
	// Crash during recovery itself, then recover again: the queue must
	// still converge to a legal state (recovery is idempotent).
	q, h := newTestQueue(t, 1)
	mustEnqueue(t, q, 0, 1)
	mustEnqueue(t, q, 0, 2)
	h.ArmCrash(40)
	if !pmem.RunToCrash(func() {
		if err := q.PrepEnqueue(0, 10); err != nil {
			t.Fatal(err)
		}
		q.ExecEnqueue(0)
	}) {
		t.Skip("workload shorter than arm point")
	}
	h.Crash(pmem.DropAll{})
	for step := uint64(1); step < 60; step++ {
		h.ArmCrash(step)
		if !pmem.RunToCrash(func() { q.Recover() }) {
			break // recovery completed under this arm point
		}
		h.Crash(pmem.DropAll{})
	}
	q.Recover()
	res := q.Resolve(0)
	rest := drain(t, q, 0)
	okState := fmt.Sprintf("%v", rest) == "[1 2 10]" && res.Executed ||
		fmt.Sprintf("%v", rest) == "[1 2]" && !res.Executed
	if !okState {
		t.Fatalf("after restarted recovery: queue=%v res=%+v", rest, res)
	}
}

func TestRecoverLocalCompletesEnqueueTag(t *testing.T) {
	for _, adv := range []pmem.Adversary{pmem.DropAll{}, pmem.KeepAll{}} {
		for step := uint64(1); ; step++ {
			q, h := newTestQueue(t, 2)
			mustEnqueue(t, q, 0, 1)
			h.ArmCrash(step)
			crashed := pmem.RunToCrash(func() {
				if err := q.PrepEnqueue(0, 10); err != nil {
					t.Fatal(err)
				}
				q.ExecEnqueue(0)
			})
			if !crashed {
				break
			}
			h.Crash(adv)
			// Independent recovery: no centralized phase at all.
			q.ResetVolatile()
			q.RecoverLocal(0)
			q.RecoverLocal(1)
			res := q.Resolve(0)
			rest := drain(t, q, 1)
			inQueue := len(rest) == 2 && rest[1] == 10
			switch {
			case res.Op == OpNone || (res.Op == OpEnqueue && !res.Executed):
				if inQueue {
					t.Fatalf("step %d: value linked but resolution says not executed: %v %+v", step, rest, res)
				}
			case res.Op == OpEnqueue && res.Executed:
				if !inQueue {
					t.Fatalf("step %d: resolution says executed but value missing: %v %+v", step, rest, res)
				}
			default:
				t.Fatalf("step %d: unexpected resolution %+v", step, res)
			}
		}
	}
}

func TestRecoverLocalConcurrentWithTraffic(t *testing.T) {
	// RecoverLocal by one thread runs while another thread operates.
	q, h := newTestQueue(t, 2)
	mustEnqueue(t, q, 0, 1)
	h.ArmCrash(25)
	pmem.RunToCrash(func() {
		if err := q.PrepEnqueue(0, 10); err != nil {
			t.Fatal(err)
		}
		q.ExecEnqueue(0)
	})
	h.Crash(pmem.KeepAll{})
	q.ResetVolatile()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		q.RecoverLocal(0)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = q.Enqueue(1, uint64(100+i))
			q.Dequeue(1)
		}
	}()
	wg.Wait()
	res := q.Resolve(0)
	if res.Op == OpEnqueue && res.Executed {
		return // fine
	}
	// If not executed, 10 must not be anywhere.
	for _, v := range drain(t, q, 0) {
		if v == 10 {
			t.Fatalf("resolution %+v but 10 found in queue", res)
		}
	}
}

// TestConcurrentCrashRandomizedConservation runs multi-threaded detectable
// traffic, crashes at a pseudo-random step, recovers, resolves every
// thread, and checks exactly-once value conservation using the
// resolutions.
func TestConcurrentCrashRandomizedConservation(t *testing.T) {
	const threads = 3
	for trial := 0; trial < 40; trial++ {
		q, h := newTestQueue(t, threads)
		for i := 0; i < 4; i++ {
			mustEnqueue(t, q, 0, uint64(9000+i))
		}
		h.ArmCrash(uint64(50 + trial*37))
		var wg sync.WaitGroup
		dequeued := make([][]uint64, threads) // values from ops that returned
		enqueued := make([][]uint64, threads) // values whose exec-enqueue returned
		pending := make([]uint64, threads)    // value being enqueued at crash, 0 if none
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				pmem.RunToCrash(func() {
					for i := 0; ; i++ {
						v := uint64(tid+1)<<32 | uint64(i+1)
						pending[tid] = v
						if err := q.PrepEnqueue(tid, v); err != nil {
							t.Errorf("prep: %v", err)
							return
						}
						q.ExecEnqueue(tid)
						enqueued[tid] = append(enqueued[tid], v)
						pending[tid] = 0
						q.PrepDequeue(tid)
						if got, ok := q.ExecDequeue(tid); ok {
							dequeued[tid] = append(dequeued[tid], got)
						}
					}
				})
			}(tid)
		}
		wg.Wait()
		h.Crash(pmem.NewRandomFates(int64(trial)))
		q.Recover()

		// Resolutions decide the fate of each thread's pending op.
		inQueueOrDequeued := map[uint64]int{}
		for _, v := range drain(t, q, 0) {
			inQueueOrDequeued[v]++
		}
		for tid := 0; tid < threads; tid++ {
			for _, v := range dequeued[tid] {
				inQueueOrDequeued[v]++
			}
		}
		// Every enqueue that returned must appear exactly once, unless it
		// was dequeued by an op that did NOT return and did NOT resolve as
		// executed — impossible to distinguish here, so only check ≤ 1 for
		// all and == 1 for seeded values still conserved modulo pending
		// dequeues. Duplicates are always a bug.
		for v, n := range inQueueOrDequeued {
			if n > 1 {
				t.Fatalf("trial %d: value %d appears %d times", trial, v, n)
			}
		}
		// A pending enqueue resolved as executed must be present; resolved
		// as not executed must be absent.
		for tid := 0; tid < threads; tid++ {
			res := q.Resolve(tid)
			if res.Op == OpEnqueue && pending[tid] != 0 && res.Arg == pending[tid] {
				_, present := inQueueOrDequeued[pending[tid]]
				if res.Executed && !present {
					t.Fatalf("trial %d tid %d: enqueue(%d) resolved executed but value lost", trial, tid, pending[tid])
				}
				if !res.Executed && present {
					t.Fatalf("trial %d tid %d: enqueue(%d) resolved not-executed but value present", trial, tid, pending[tid])
				}
			}
		}
	}
}
