// Package core implements the paper's primary contribution: the DSS queue
// of Section 3, a lock-free, strictly linearizable, detectable FIFO queue
// for persistent memory with a volatile cache.
//
// The algorithm extends Michael & Scott's queue and Friedman et al.'s
// durable queue with a per-thread detectability word X[i] holding a tagged
// node pointer, exactly as in the paper's Figures 3 and 4. Both recovery
// variants from the paper are provided: the centralized recovery procedure
// of Figure 6 (Recover) and the independent per-thread variant sketched in
// Section 3.3 (RecoverLocal), which removes the last trace of auxiliary
// state.
//
// Persistent layout (word offsets within the pmem arena):
//
//	queue node (1 cache line): [0] value, [1] next, [2] deqThreadID
//	metadata: head pointer and tail pointer on separate lines;
//	X[i] each on its own line to avoid false sharing.
//
// Tag bits borrowed from the unused top bits of node addresses (the paper
// borrows the 16 spare bits of 48-bit x86-64 pointers):
//
//	bit 63 ENQ_PREP, bit 62 ENQ_COMPL, bit 61 DEQ_PREP, bit 60 EMPTY.
package core

import (
	"errors"
	"fmt"

	"repro/internal/ebr"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// Node field offsets.
const (
	offValue  = 0
	offNext   = 1
	offDeqTID = 2
	nodeWords = pmem.WordsPerLine
)

// Tag bits stored in the high bits of X[i] words.
const (
	enqPrepTag  = uint64(1) << 63
	enqComplTag = uint64(1) << 62
	deqPrepTag  = uint64(1) << 61
	emptyTag    = uint64(1) << 60
	tagMask     = enqPrepTag | enqComplTag | deqPrepTag | emptyTag
)

// tidNone is the deqThreadID of an unclaimed node (the paper's −1).
const tidNone = ^uint64(0)

// ndMark is OR-ed into deqThreadID by non-detectable dequeues so that a
// detectable resolve never mistakes a non-detectable claim by the same
// thread for its own (Section 3.2, final paragraph).
const ndMark = uint64(1) << 58

// ErrNoNodes is returned when the pre-allocated node pool is exhausted.
var ErrNoNodes = errors.New("core: node pool exhausted")

// Config parameterizes a DSS queue.
type Config struct {
	// Threads is the number of worker threads (1..Threads-1 are valid
	// tids; the paper numbers threads 1..n, we use 0..n-1).
	Threads int
	// NodesPerThread sizes each thread's pre-allocated node pool.
	NodesPerThread int
	// ExtraNodes adds shared spare nodes (the sentinel comes from here).
	ExtraNodes int
}

// Queue is a detectable recoverable FIFO queue (the DSS queue). All
// exported methods except New, Recover and RecoverLocal are safe for
// concurrent use by distinct threads; each thread must pass its own tid.
type Queue struct {
	h    *pmem.Heap
	pool *pmem.Pool
	rec  *ebr.Collector

	head  pmem.Addr // address of the head pointer word
	tail  pmem.Addr // address of the tail pointer word
	xBase pmem.Addr // X[i] lives at xBase + i*WordsPerLine

	threads int
}

// Persistent configuration line (the first line of the metadata region),
// letting a later process re-attach to an existing queue on a file-backed
// heap.
const (
	cfgMagic   = 0 // magicQueue marks an initialized queue
	cfgThreads = 1
	cfgNodes   = 2 // NodesPerThread
	cfgExtra   = 3 // ExtraNodes
	cfgPool    = 4 // pool region base address
)

// magicQueue identifies an initialized DSS queue's metadata.
const magicQueue = 0x4453_5351 // "DSSQ"

// New allocates and initializes a DSS queue on h. The queue registers its
// metadata in heap root slot rootSlot so that recovery code can locate it
// after a crash.
func New(h *pmem.Heap, rootSlot int, cfg Config) (*Queue, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("core: need at least one thread, got %d", cfg.Threads)
	}
	if cfg.NodesPerThread < 0 || cfg.ExtraNodes < 1 {
		return nil, fmt.Errorf("core: pool sizing must include at least one extra node for the sentinel")
	}
	meta, err := h.Alloc((3 + cfg.Threads) * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("core: metadata: %w", err)
	}
	q := &Queue{
		h:       h,
		head:    meta + pmem.WordsPerLine,
		tail:    meta + 2*pmem.WordsPerLine,
		xBase:   meta + 3*pmem.WordsPerLine,
		threads: cfg.Threads,
	}
	q.pool, err = pmem.NewPool(h, pmem.PoolConfig{
		Threads:         cfg.Threads,
		BlocksPerThread: cfg.NodesPerThread,
		ExtraBlocks:     cfg.ExtraNodes,
		BlockWords:      nodeWords,
		Pinned:          q.pinned,
	})
	if err != nil {
		return nil, fmt.Errorf("core: node pool: %w", err)
	}
	h.Store(meta+cfgThreads, uint64(cfg.Threads))
	h.Store(meta+cfgNodes, uint64(cfg.NodesPerThread))
	h.Store(meta+cfgExtra, uint64(cfg.ExtraNodes))
	h.Store(meta+cfgPool, uint64(q.pool.Base()))
	h.Store(meta+cfgMagic, magicQueue)
	h.Persist(meta)
	q.rec, err = ebr.New(cfg.Threads, func(tid int, a pmem.Addr) {
		q.pool.Free(tid, a)
	})
	if err != nil {
		return nil, fmt.Errorf("core: reclamation: %w", err)
	}
	// Before any retired node becomes reusable, persist head and tail.
	// This keeps the persisted list image scannable: recovery walks the
	// chain from the persisted head, and this hook guarantees that no
	// node reachable from it has had its fields overwritten by reuse.
	// (Two flushes, one fence per reclamation batch; see DESIGN.md.)
	q.rec.SetDrainHook(func(int) {
		q.h.PersistPair(q.head, q.tail)
	})

	sentinel, ok := q.pool.Alloc(0)
	if !ok {
		return nil, fmt.Errorf("core: no node available for sentinel")
	}
	q.initNode(sentinel, 0)
	q.h.Store(q.head, uint64(sentinel))
	q.h.Store(q.tail, uint64(sentinel))
	q.h.PersistPair(q.head, q.tail)
	for i := 0; i < cfg.Threads; i++ {
		q.h.Store(q.xAddr(i), 0)
	}
	q.h.PersistRange(q.xBase, cfg.Threads*pmem.WordsPerLine)
	h.SetRoot(rootSlot, meta)
	return q, nil
}

// Attach reconstructs the handle of an existing DSS queue from heap root
// slot rootSlot (a queue built by New in a previous process over a
// file-backed heap). The caller must run Recover before resuming
// operations: the volatile companions (free lists, reclamation domain)
// start empty and recovery rebuilds them from the persistent image.
func Attach(h *pmem.Heap, rootSlot int) (*Queue, error) {
	meta := h.Root(rootSlot)
	if meta == 0 {
		return nil, fmt.Errorf("core: root slot %d is empty", rootSlot)
	}
	if h.Load(meta+cfgMagic) != magicQueue {
		return nil, fmt.Errorf("core: root slot %d does not hold a DSS queue", rootSlot)
	}
	threads := int(h.Load(meta + cfgThreads))
	if threads <= 0 || threads > 1<<16 {
		return nil, fmt.Errorf("core: corrupt thread count %d", threads)
	}
	q := &Queue{
		h:       h,
		head:    meta + pmem.WordsPerLine,
		tail:    meta + 2*pmem.WordsPerLine,
		xBase:   meta + 3*pmem.WordsPerLine,
		threads: threads,
	}
	var err error
	q.pool, err = pmem.AttachPool(h, pmem.Addr(h.Load(meta+cfgPool)), pmem.PoolConfig{
		Threads:         threads,
		BlocksPerThread: int(h.Load(meta + cfgNodes)),
		ExtraBlocks:     int(h.Load(meta + cfgExtra)),
		BlockWords:      nodeWords,
		Pinned:          q.pinned,
	})
	if err != nil {
		return nil, fmt.Errorf("core: node pool: %w", err)
	}
	q.rec, err = ebr.New(threads, func(tid int, a pmem.Addr) {
		q.pool.Free(tid, a)
	})
	if err != nil {
		return nil, fmt.Errorf("core: reclamation: %w", err)
	}
	q.rec.SetDrainHook(func(int) {
		q.h.PersistPair(q.head, q.tail)
	})
	return q, nil
}

// Threads reports the number of threads the queue was built for.
func (q *Queue) Threads() int { return q.threads }

// Heap returns the queue's underlying heap.
func (q *Queue) Heap() *pmem.Heap { return q.h }

// xAddr returns the address of X[tid].
func (q *Queue) xAddr(tid int) pmem.Addr {
	return q.xBase + pmem.Addr(tid*pmem.WordsPerLine)
}

// initNode writes a fresh node's fields and persists them (the node fits
// one cache line). This is the "new Node(val); FLUSH(node)" of the paper's
// prep-enqueue lines 1-2.
func (q *Queue) initNode(node pmem.Addr, v uint64) {
	q.h.Store(node+offValue, v)
	q.h.Store(node+offNext, 0)
	q.h.Store(node+offDeqTID, tidNone)
	q.h.Persist(node)
}

// ptrOf strips the tag bits from an X word.
func ptrOf(x uint64) pmem.Addr { return pmem.Addr(x &^ tagMask &^ ndMark) }

// marked reports whether deqThreadID indicates a claimed node (detectable
// or non-detectable claim).
func markedTID(w uint64) bool { return w != tidNone }

// pinned is the node pool's recycling veto: a node must not be reused
// while some thread's detectability word X[i] — in the coherent view or,
// crucially, in the persisted view that a crash would revive — references
// it directly (enqueue case, and the dequeue predecessor) or through its
// next field (the claimed node of a dequeue). Reusing such a node would let
// a post-crash resolve read a recycled value or claim mark and report a
// wrong outcome. At most two nodes per thread are pinned at a time, so
// parked nodes are few and short-lived.
//
// The scan reads through LoadVolatile: the pin check is the simulator's
// reclamation bookkeeping (the paper's testbed pays no per-X memory charge
// here), not part of the queue algorithm, so it must not consume modeled
// access delay, operation counts, or Tracked-mode steps.
func (q *Queue) pinned(a pmem.Addr) bool {
	tracked := q.h.Mode() == pmem.Tracked
	for i := 0; i < q.threads; i++ {
		if q.xPins(q.h.LoadVolatile(q.xAddr(i)), a) {
			return true
		}
		if tracked && q.xPins(q.h.PersistedLoad(q.xAddr(i)), a) {
			return true
		}
	}
	return false
}

// xPins reports whether the X word x pins node a.
func (q *Queue) xPins(x uint64, a pmem.Addr) bool {
	p := ptrOf(x)
	if p == 0 {
		return false
	}
	if p == a {
		return true
	}
	if x&deqPrepTag != 0 {
		// p itself is pinned (directly referenced), so its fields are
		// stable and this dereference is safe.
		if pmem.Addr(q.h.LoadVolatile(p+offNext)) == a {
			return true
		}
	}
	return false
}

// Stats exposes pool occupancy for tests and examples.
func (q *Queue) FreeNodes() int { return q.pool.FreeCount() }

// resolution helpers shared with the spec package.

// Resolution is the decoded result of Resolve: the DSS's (A[p], R[p]) pair
// specialized to the queue type.
type Resolution struct {
	// Op is the prepared operation, or OpNone if none was prepared.
	Op OpName
	// Arg is the argument of a prepared enqueue.
	Arg uint64
	// Executed reports whether the prepared operation took effect
	// (R[p] ≠ ⊥).
	Executed bool
	// Val is the value returned by an executed dequeue.
	Val uint64
	// Empty reports that an executed dequeue found the queue empty.
	Empty bool
}

// OpName identifies a queue operation in a Resolution.
type OpName int

const (
	// OpNone means no operation was prepared (A[p] = ⊥).
	OpNone OpName = iota + 1
	// OpEnqueue is a prepared enqueue.
	OpEnqueue
	// OpDequeue is a prepared dequeue.
	OpDequeue
)

// String returns the operation name.
func (o OpName) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpEnqueue:
		return "enqueue"
	case OpDequeue:
		return "dequeue"
	default:
		return fmt.Sprintf("OpName(%d)", int(o))
	}
}

// Resp converts the resolution into the spec package's resolve response,
// for conformance checking against D⟨queue⟩.
func (r Resolution) Resp() spec.Resp {
	switch r.Op {
	case OpEnqueue:
		inner := spec.BottomResp()
		if r.Executed {
			inner = spec.AckResp()
		}
		return spec.PairResp(true, spec.Enqueue(r.Arg), inner)
	case OpDequeue:
		inner := spec.BottomResp()
		if r.Executed {
			if r.Empty {
				inner = spec.EmptyResp()
			} else {
				inner = spec.ValResp(r.Val)
			}
		}
		return spec.PairResp(true, spec.Dequeue(), inner)
	default:
		return spec.PairResp(false, spec.Op{}, spec.BottomResp())
	}
}
