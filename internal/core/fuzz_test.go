package core

import (
	"testing"

	"repro/internal/pmem"
)

// FuzzCrashSchedule lets the fuzzer choose the crash point, the dirty-line
// adversary, and the operation schedule, then checks the detectability
// invariants: the post-recovery resolution must be consistent with the
// surviving queue, and no value may be lost or duplicated.
//
// Run with: go test -fuzz FuzzCrashSchedule ./internal/core
func FuzzCrashSchedule(f *testing.F) {
	f.Add(uint16(10), int64(1), []byte{0, 1, 0, 1})
	f.Add(uint16(35), int64(2), []byte{0, 0, 1, 1, 1})
	f.Add(uint16(80), int64(3), []byte{1, 0, 1, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, crashStep uint16, seed int64, schedule []byte) {
		if crashStep == 0 || len(schedule) == 0 || len(schedule) > 32 {
			t.Skip()
		}
		h, err := pmem.New(pmem.Config{Words: 1 << 15, Mode: pmem.Tracked})
		if err != nil {
			t.Fatal(err)
		}
		q, err := New(h, 0, Config{Threads: 1, NodesPerThread: 64, ExtraNodes: 8})
		if err != nil {
			t.Fatal(err)
		}

		// Model of certainly-alive values, maintained from op returns and
		// later reconciled with the resolution.
		alive := map[uint64]bool{}
		next := uint64(1)
		h.ArmCrash(uint64(crashStep))
		pmem.RunToCrash(func() {
			for _, b := range schedule {
				if b%2 == 0 {
					v := next
					next++
					if err := q.PrepEnqueue(0, v); err != nil {
						return
					}
					q.ExecEnqueue(0)
					alive[v] = true
				} else {
					q.PrepDequeue(0)
					if got, ok := q.ExecDequeue(0); ok {
						if !alive[got] {
							t.Fatalf("dequeued unknown value %d", got)
						}
						delete(alive, got)
					}
				}
			}
		})
		if !h.Crashed() {
			// The schedule finished before the armed step: disarm so the
			// audit drain below cannot trip it.
			h.ArmCrash(0)
		} else {
			h.Crash(pmem.NewRandomFates(seed))
			q.Recover()
			res := q.Resolve(0)
			switch {
			case res.Op == OpEnqueue && res.Executed:
				alive[res.Arg] = true
			case res.Op == OpEnqueue:
				delete(alive, res.Arg)
			case res.Op == OpDequeue && res.Executed && !res.Empty:
				delete(alive, res.Val)
			}
		}
		got := map[uint64]bool{}
		for i := 0; i < 100; i++ {
			v, ok := q.Dequeue(0)
			if !ok {
				break
			}
			if got[v] {
				t.Fatalf("value %d dequeued twice in drain", v)
			}
			got[v] = true
		}
		for v := range got {
			if !alive[v] {
				t.Fatalf("unexpected value %d in queue (alive=%v)", v, alive)
			}
		}
		for v := range alive {
			if !got[v] {
				t.Fatalf("value %d lost (drained=%v)", v, got)
			}
		}
	})
}
