//go:build linux

package core

import (
	"path/filepath"
	"testing"

	"repro/internal/pmem"
)

// TestAttachAcrossFileHeapReopen is the real-durability test: a queue
// built on a file-backed heap is closed (as a process exit would) and a
// second "process" re-attaches, recovers, and finds the values — using
// exactly the recovery machinery the simulated crashes exercise.
func TestAttachAcrossFileHeapReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.pmem")

	// Process 1: build, use, leave a prepared-but-unexecuted enqueue
	// behind, and exit without any orderly shutdown.
	{
		h, closeHeap, err := pmem.OpenFile(path, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		q, err := New(h, 0, Config{Threads: 2, NodesPerThread: 16, ExtraNodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		for v := uint64(1); v <= 3; v++ {
			if err := q.Enqueue(0, v); err != nil {
				t.Fatal(err)
			}
		}
		if err := q.PrepEnqueue(1, 99); err != nil {
			t.Fatal(err)
		}
		q.ExecEnqueue(1)
		if v, ok := q.Dequeue(0); !ok || v != 1 {
			t.Fatalf("dequeue = (%d,%v)", v, ok)
		}
		if err := h.SyncErr(); err != nil {
			t.Fatal(err)
		}
		if err := closeHeap(); err != nil {
			t.Fatal(err)
		}
	}

	// Process 2: re-attach, recover, resolve, drain.
	{
		h, closeHeap, err := pmem.OpenFile(path, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		defer closeHeap()
		q, err := Attach(h, 0)
		if err != nil {
			t.Fatal(err)
		}
		if q.Threads() != 2 {
			t.Fatalf("attached thread count = %d, want 2", q.Threads())
		}
		q.Recover()
		res := q.Resolve(1)
		if res.Op != OpEnqueue || res.Arg != 99 || !res.Executed {
			t.Fatalf("resolution across processes = %+v", res)
		}
		var got []uint64
		for {
			v, ok := q.Dequeue(0)
			if !ok {
				break
			}
			got = append(got, v)
		}
		want := []uint64{2, 3, 99}
		if len(got) != len(want) {
			t.Fatalf("drained %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("drained %v, want %v", got, want)
			}
		}
		// The re-attached queue is fully operational.
		for i := 0; i < 50; i++ {
			if err := q.Enqueue(1, uint64(1000+i)); err != nil {
				t.Fatalf("post-attach enqueue: %v", err)
			}
			if _, ok := q.Dequeue(1); !ok {
				t.Fatal("post-attach dequeue failed")
			}
		}
	}
}

func TestAttachValidation(t *testing.T) {
	h, err := pmem.New(pmem.Config{Words: 1 << 12, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(h, 0); err == nil {
		t.Fatal("attached to an empty root slot")
	}
	a := h.MustAlloc(8)
	h.SetRoot(1, a)
	if _, err := Attach(h, 1); err == nil {
		t.Fatal("attached to a non-queue root")
	}
}
