package core

import "testing"

// TestAbandonPrepEnqueue checks that abandoning a prepared-but-unexecuted
// enqueue clears the detectable record, returns the node to the pool, and
// leaves the queue contents untouched.
func TestAbandonPrepEnqueue(t *testing.T) {
	q, _ := newTestQueue(t, 2)
	mustEnqueue(t, q, 0, 1)

	free := q.FreeNodes()
	if err := q.PrepEnqueue(0, 42); err != nil {
		t.Fatalf("PrepEnqueue: %v", err)
	}
	if q.FreeNodes() != free-1 {
		t.Fatalf("prep did not consume a node: %d -> %d", free, q.FreeNodes())
	}
	q.AbandonPrep(0)
	if got := q.FreeNodes(); got != free {
		t.Fatalf("abandoned node not returned: free %d, want %d", got, free)
	}
	if res := q.Resolve(0); res.Op != OpNone {
		t.Fatalf("Resolve after abandon = %+v, want OpNone", res)
	}
	if got := drain(t, q, 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("queue contents after abandon = %v, want [1]", got)
	}
}

// TestAbandonPrepDequeue checks the dequeue side: a prepared dequeue holds
// no node, so abandoning it just clears X.
func TestAbandonPrepDequeue(t *testing.T) {
	q, _ := newTestQueue(t, 1)
	mustEnqueue(t, q, 0, 7)
	q.PrepDequeue(0)
	free := q.FreeNodes()
	q.AbandonPrep(0)
	if got := q.FreeNodes(); got != free {
		t.Fatalf("abandoning a dequeue changed the free count: %d -> %d", free, got)
	}
	if res := q.Resolve(0); res.Op != OpNone {
		t.Fatalf("Resolve after abandon = %+v, want OpNone", res)
	}
	if got := drain(t, q, 0); len(got) != 1 || got[0] != 7 {
		t.Fatalf("queue contents after abandon = %v, want [7]", got)
	}
}

// TestAbandonExecutedEnqueueKeepsNode checks the guard: an enqueue that
// already took effect must keep its node (it is linked in the list); only
// the X record is cleared.
func TestAbandonExecutedEnqueueKeepsNode(t *testing.T) {
	q, _ := newTestQueue(t, 1)
	if err := q.PrepEnqueue(0, 9); err != nil {
		t.Fatalf("PrepEnqueue: %v", err)
	}
	q.ExecEnqueue(0)
	free := q.FreeNodes()
	q.AbandonPrep(0)
	if got := q.FreeNodes(); got != free {
		t.Fatalf("abandoning an executed enqueue freed its node: %d -> %d", free, got)
	}
	if res := q.Resolve(0); res.Op != OpNone {
		t.Fatalf("Resolve after abandon = %+v, want OpNone", res)
	}
	if got := drain(t, q, 0); len(got) != 1 || got[0] != 9 {
		t.Fatalf("queue contents after abandon = %v, want [9]", got)
	}
}

// TestAbandonIsIdempotent: abandoning with no prepared operation is a no-op.
func TestAbandonIsIdempotent(t *testing.T) {
	q, _ := newTestQueue(t, 1)
	free := q.FreeNodes()
	q.AbandonPrep(0)
	q.AbandonPrep(0)
	if got := q.FreeNodes(); got != free {
		t.Fatalf("no-op abandon changed free count: %d -> %d", free, got)
	}
}
