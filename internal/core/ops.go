package core

import (
	"runtime"

	"repro/internal/pmem"
)

// PrepEnqueue is the paper's prep-enqueue (Figure 3, lines 1-4): it
// allocates a node holding v, persists it, and records the detectable
// intent in X[tid]. It returns ErrNoNodes if the thread's pre-allocated
// pool is exhausted.
//
// As the memory-management extension mentioned in Section 4, PrepEnqueue
// also reclaims the node of a previously prepared enqueue that verifiably
// never took effect (its X entry carries ENQ_PREP but not ENQ_COMPL after
// recovery has run), so repeated crash/re-prepare cycles do not leak.
func (q *Queue) PrepEnqueue(tid int, v uint64) error {
	oldX := q.h.Load(q.xAddr(tid))
	node, ok := q.allocNode(tid)
	if !ok {
		return ErrNoNodes
	}
	q.initNode(node, v)
	q.h.Store(q.xAddr(tid), uint64(node)|enqPrepTag)
	q.h.Persist(q.xAddr(tid))
	if oldX&enqPrepTag != 0 && oldX&enqComplTag == 0 {
		if old := ptrOf(oldX); old != 0 && old != node {
			// The previous prepared enqueue never linked its node (exec
			// never completed its CAS, or was never called): nothing else
			// references it, so it can return to the pool directly.
			q.pool.Free(tid, old)
		}
	}
	return nil
}

// allocNode pops a node from the pool, falling back to forced epoch
// collection (with bounded yielding retries, since a collection attempt
// can fail transiently while peers are mid-operation) when the lazy
// reclamation in Retire has not yet caught up with a small pool.
func (q *Queue) allocNode(tid int) (pmem.Addr, bool) {
	for attempt := 0; attempt < 128; attempt++ {
		if node, ok := q.pool.Alloc(tid); ok {
			return node, true
		}
		q.rec.Collect(tid)
		runtime.Gosched()
	}
	return 0, false
}

// ExecEnqueue is the paper's exec-enqueue (Figure 3, lines 5-19): it links
// the node prepared by the last PrepEnqueue at the tail, records completion
// in X[tid] for detectability, and swings the tail pointer. Calling it
// without a prepared enqueue, or twice for one PrepEnqueue, violates Axiom
// 2's precondition; the implementation makes the second call a no-op.
func (q *Queue) ExecEnqueue(tid int) {
	x := q.h.Load(q.xAddr(tid))
	if x&enqPrepTag == 0 || x&enqComplTag != 0 {
		return
	}
	node := ptrOf(x)
	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	q.enqueue(tid, node, true)
}

// Enqueue is the non-detectable enqueue (Axiom 4): prep-enqueue followed by
// exec-enqueue with all X accesses omitted (Section 3.1).
func (q *Queue) Enqueue(tid int, v uint64) error {
	node, ok := q.allocNode(tid)
	if !ok {
		return ErrNoNodes
	}
	q.initNode(node, v)
	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	q.enqueue(tid, node, false)
	return nil
}

// enqueue links node at the tail of the list, following the durable queue.
// When detect is set it additionally tags X[tid] with ENQ_COMPL after the
// link persists (Figure 3, lines 13-14).
func (q *Queue) enqueue(tid int, node pmem.Addr, detect bool) {
	for {
		last := pmem.Addr(q.h.Load(q.tail))
		next := pmem.Addr(q.h.Load(last + offNext))
		if last != pmem.Addr(q.h.Load(q.tail)) {
			continue
		}
		if next == 0 { // at tail
			if q.h.CompareAndSwap(last+offNext, 0, uint64(node)) {
				q.h.Persist(last + offNext)
				if detect {
					q.h.Store(q.xAddr(tid), q.h.Load(q.xAddr(tid))|enqComplTag)
					q.h.Persist(q.xAddr(tid))
				}
				q.h.CompareAndSwap(q.tail, uint64(last), uint64(node))
				return
			}
		} else { // help another enqueuing thread
			q.h.Persist(last + offNext)
			q.h.CompareAndSwap(q.tail, uint64(last), uint64(next))
		}
	}
}

// PrepDequeue is the paper's prep-dequeue (Figure 4, lines 32-33): it
// records the detectable intent to dequeue in X[tid].
func (q *Queue) PrepDequeue(tid int) {
	q.h.Store(q.xAddr(tid), deqPrepTag)
	q.h.Persist(q.xAddr(tid))
}

// ExecDequeue is the paper's exec-dequeue (Figure 4, lines 34-55). It
// returns (v, true) for a dequeued value and (0, false) when the queue is
// empty (the paper's EMPTY response).
func (q *Queue) ExecDequeue(tid int) (uint64, bool) {
	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	return q.dequeue(tid, true)
}

// Dequeue is the non-detectable dequeue (Axiom 4): prep-dequeue followed by
// exec-dequeue with X accesses omitted, and with the claim written as
// tid|ndMark so that a later detectable resolve by the same thread cannot
// confuse the two (Section 3.2).
func (q *Queue) Dequeue(tid int) (uint64, bool) {
	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	return q.dequeue(tid, false)
}

// dequeue removes the node after the sentinel, following the durable queue
// with the detectability additions of Figure 4.
func (q *Queue) dequeue(tid int, detect bool) (uint64, bool) {
	claim := uint64(tid)
	if !detect {
		claim |= ndMark
	}
	for {
		first := pmem.Addr(q.h.Load(q.head))
		last := pmem.Addr(q.h.Load(q.tail))
		next := pmem.Addr(q.h.Load(first + offNext))
		if first != pmem.Addr(q.h.Load(q.head)) {
			continue
		}
		if first == last { // empty queue, or tail lagging
			if next == 0 { // nothing newly appended at tail
				if detect {
					q.h.Store(q.xAddr(tid), q.h.Load(q.xAddr(tid))|emptyTag)
					q.h.Persist(q.xAddr(tid))
				}
				return 0, false
			}
			q.h.Persist(last + offNext)
			q.h.CompareAndSwap(q.tail, uint64(last), uint64(next))
			continue
		}
		// Non-empty: save the predecessor of the node to be dequeued for
		// detectability (Figure 4, lines 47-48), then claim its successor.
		if detect {
			q.h.Store(q.xAddr(tid), uint64(first)|deqPrepTag)
			q.h.Persist(q.xAddr(tid))
		}
		if q.h.CompareAndSwap(next+offDeqTID, tidNone, claim) {
			q.h.Persist(next + offDeqTID)
			if q.h.CompareAndSwap(q.head, uint64(first), uint64(next)) {
				q.rec.Retire(tid, first)
			}
			return q.h.Load(next + offValue), true
		}
		if pmem.Addr(q.h.Load(q.head)) == first { // help another dequeuer
			q.h.Persist(next + offDeqTID)
			if q.h.CompareAndSwap(q.head, uint64(first), uint64(next)) {
				q.rec.Retire(tid, first)
			}
		}
	}
}

// AbandonPrep withdraws tid's currently prepared-but-unexecuted operation,
// clearing X[tid] (persisted) and returning the node of an unlinked
// prepared enqueue to the pool. It is the recovery/composition entry point
// a multi-queue front-end needs: when a process re-prepares on a different
// queue, the stale prep on this one would otherwise pin a node until the
// next same-queue PrepEnqueue reclaims it. Calling it while the prepared
// operation has already executed, or concurrently with the owner's own
// prep/exec, violates the per-process (A, R) contract; after it returns,
// Resolve(tid) reports OpNone.
func (q *Queue) AbandonPrep(tid int) {
	x := q.h.Load(q.xAddr(tid))
	if x == 0 {
		return
	}
	// Clear and persist X first so the node is no longer pinned by the
	// recycling veto and no crash can resurrect the abandoned intent.
	q.h.Store(q.xAddr(tid), 0)
	q.h.Persist(q.xAddr(tid))
	if x&enqPrepTag != 0 && x&enqComplTag == 0 {
		if node := ptrOf(x); node != 0 {
			// The prepared enqueue never linked its node: nothing else
			// references it, so it can return to the pool directly.
			q.pool.Free(tid, node)
		}
	}
}

// Resolve is the paper's resolve operation (Figure 3, lines 20-27): it
// reports the most recently prepared detectable operation and, if it took
// effect, its response. It is total and idempotent, and is meaningful both
// after a crash (its purpose) and during normal operation.
func (q *Queue) Resolve(tid int) Resolution {
	x := q.h.Load(q.xAddr(tid))
	switch {
	case x&enqPrepTag != 0:
		return q.resolveEnqueue(x)
	case x&deqPrepTag != 0:
		return q.resolveDequeue(tid, x)
	default: // no operation was prepared
		return Resolution{Op: OpNone}
	}
}

// resolveEnqueue is Figure 3, lines 28-31.
func (q *Queue) resolveEnqueue(x uint64) Resolution {
	node := ptrOf(x)
	val := q.h.Load(node + offValue)
	return Resolution{
		Op:       OpEnqueue,
		Arg:      val,
		Executed: x&enqComplTag != 0,
	}
}

// resolveDequeue is Figure 4, lines 56-63.
func (q *Queue) resolveDequeue(tid int, x uint64) Resolution {
	switch {
	case x == deqPrepTag:
		// Prepared but did not take effect.
		return Resolution{Op: OpDequeue}
	case x == deqPrepTag|emptyTag:
		// Took effect on an empty queue.
		return Resolution{Op: OpDequeue, Executed: true, Empty: true}
	default:
		first := ptrOf(x)
		next := pmem.Addr(q.h.Load(first + offNext))
		// next cannot be NULL here: X was written only after observing a
		// non-NULL, already-persisted successor (see Section 3.2); the
		// guard keeps a corrupted heap from panicking the library.
		if next != 0 && q.h.Load(next+offDeqTID) == uint64(tid) {
			return Resolution{Op: OpDequeue, Executed: true, Val: q.h.Load(next + offValue)}
		}
		// Crashed between saving the predecessor and a successful claim;
		// the successor may be claimed by this thread's non-detectable
		// dequeue, by another thread, or by nobody — in all cases this
		// dequeue did not take effect.
		return Resolution{Op: OpDequeue}
	}
}
