package core

import (
	"repro/internal/pmem"
)

// Recover is the centralized recovery procedure of Figure 6 (Appendix A),
// extended — as the paper's evaluation section describes — to prevent
// memory leaks by rebuilding the volatile node pools with a sweep.
//
// Contract (shared by stack.Stack.Recover and cwe.Queue.Recover): it must
// run single-threaded, after Heap.Crash and before application threads
// resume, and it is idempotent — running it again (e.g. after a crash
// during recovery itself) reproduces the same state. The steps:
//
//  1. Collect the set of nodes reachable from the (persisted) head.
//  2. Set tail to the last reachable node and persist it (lines 65-66).
//  3. Advance head to the last marked node reachable from the old head —
//     the new sentinel — and persist it (lines 67-69).
//  4. For each thread, complete the detectability state of any enqueue
//     that took effect but crashed before tagging X (lines 70-76).
//  5. Reset the reclamation domain (its state was volatile) and sweep the
//     node pool: every node that is neither reachable, nor referenced by
//     some X entry (directly or as the predecessor of a claimed node), nor
//     the sentinel, returns to the free lists.
func (q *Queue) Recover() {
	// 1. AllNodes := set of queue nodes reachable from head (line 64).
	oldHead := pmem.Addr(q.h.Load(q.head))
	all := make(map[pmem.Addr]bool)
	lastNode := oldHead
	for n := oldHead; n != 0; n = pmem.Addr(q.h.Load(n + offNext)) {
		all[n] = true
		lastNode = n
	}

	// 2. tail := last queue node reachable from head (lines 65-66).
	q.h.Store(q.tail, uint64(lastNode))
	q.h.Persist(q.tail)

	// 3. head := last marked node reachable from oldHead (lines 67-69).
	// Claimed (marked) nodes form a contiguous prefix: a claim is
	// persisted before the head moves past its node, so marks cannot have
	// gaps after a crash. The last marked node is the new sentinel.
	newHead := oldHead
	for {
		next := pmem.Addr(q.h.Load(newHead + offNext))
		if next == 0 || !markedTID(q.h.Load(next+offDeqTID)) {
			break
		}
		newHead = next
	}
	q.h.Store(q.head, uint64(newHead))
	q.h.Persist(q.head)

	// 4. Repair X entries (lines 70-76).
	for i := 0; i < q.threads; i++ {
		q.repairX(i, all)
	}

	// 5. Volatile state: reclamation domain and node pools.
	q.rec.Reset()
	live := q.liveSet(newHead)
	q.pool.Sweep(func(a pmem.Addr) bool { return live[a] })
}

// repairX completes the detectability record of thread i's pending
// enqueue, if it took effect (Figure 6, lines 70-76).
func (q *Queue) repairX(i int, all map[pmem.Addr]bool) {
	x := q.h.Load(q.xAddr(i))
	if x&enqPrepTag == 0 || x&enqComplTag != 0 {
		return
	}
	d := ptrOf(x)
	if d == 0 {
		return
	}
	switch {
	case all[d]:
		// Enqueued and still in the linked list (lines 71-74).
		q.h.Store(q.xAddr(i), x|enqComplTag)
		q.h.Persist(q.xAddr(i))
	case markedTID(q.h.Load(d + offDeqTID)):
		// Enqueued and no longer in the linked list, already claimed by a
		// dequeuer (lines 75-76).
		q.h.Store(q.xAddr(i), x|enqComplTag)
		q.h.Persist(q.xAddr(i))
	}
}

// liveSet returns the nodes that must stay allocated after recovery: the
// chain from the new head (sentinel plus queued nodes) and every node
// pinned by a detectability word.
func (q *Queue) liveSet(head pmem.Addr) map[pmem.Addr]bool {
	live := make(map[pmem.Addr]bool)
	for n := head; n != 0; n = pmem.Addr(q.h.Load(n + offNext)) {
		live[n] = true
	}
	for i := 0; i < q.threads; i++ {
		x := q.h.Load(q.xAddr(i))
		p := ptrOf(x)
		if p == 0 {
			continue
		}
		live[p] = true
		if x&deqPrepTag != 0 {
			if next := pmem.Addr(q.h.Load(p + offNext)); next != 0 {
				live[next] = true
			}
		}
	}
	return live
}

// RecoverLocal is the independent-recovery variant of Section 3.3: thread
// tid repairs only its own detectability word, with no centralized
// recovery phase — "this transformation eliminates the last trace of
// auxiliary state". Head and tail self-heal through the algorithm's
// ordinary helping paths, so after every thread has run RecoverLocal the
// queue is fully operational; unreachable nodes are not reclaimed until a
// centralized Recover runs (the paper's centralized variant owns memory
// management).
//
// RecoverLocal may run concurrently with other threads' RecoverLocal calls
// and with their resumed operations.
func (q *Queue) RecoverLocal(tid int) {
	x := q.h.Load(q.xAddr(tid))
	if x&enqPrepTag == 0 || x&enqComplTag != 0 {
		return
	}
	d := ptrOf(x)
	if d == 0 {
		return
	}
	// Scan the list for our node. A node that was linked is either still
	// reachable from head or has been claimed (marked) by a dequeuer —
	// claiming persists before unlinking — so these two checks are
	// complete. The scan tolerates concurrent dequeues: it may miss our
	// node while it is being unlinked, but then the mark check catches it.
	linked := false
	for n := pmem.Addr(q.h.Load(q.head)); n != 0; n = pmem.Addr(q.h.Load(n + offNext)) {
		if n == d {
			linked = true
			break
		}
	}
	if linked || markedTID(q.h.Load(d+offDeqTID)) {
		q.h.Store(q.xAddr(tid), x|enqComplTag)
		q.h.Persist(q.xAddr(tid))
	}
}

// ResetVolatile re-initializes the queue's volatile companions (EBR) after
// a crash when RecoverLocal is used instead of Recover. It must be called
// once, before threads resume, by any single caller.
func (q *Queue) ResetVolatile() {
	q.rec.Reset()
}
