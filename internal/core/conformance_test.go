package core

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
	"repro/internal/spec"
)

// TestSequentialConformanceRandom drives long random single-threaded op
// sequences through the real queue and through the formal D⟨queue⟩ model
// in lockstep, comparing every response. This catches semantic drift that
// the hand-written unit tests could miss.
func TestSequentialConformanceRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, _ := newTestQueue(t, 1)
		var model spec.State = spec.Detectable(spec.NewQueue(), 1)
		nextV := uint64(1)

		applyModel := func(op spec.Op) spec.Resp {
			t.Helper()
			next, resp, ok := model.Apply(op, 0)
			if !ok {
				t.Fatalf("seed %d: model rejected %v in state %s", seed, op, model.Key())
			}
			model = next
			return resp
		}

		for i := 0; i < 200; i++ {
			switch rng.Intn(5) {
			case 0: // detectable enqueue
				v := nextV
				nextV++
				if err := q.PrepEnqueue(0, v); err != nil {
					t.Fatal(err)
				}
				applyModel(spec.PrepOp(spec.Enqueue(v)))
				q.ExecEnqueue(0)
				if r := applyModel(spec.ExecOp(spec.Enqueue(v))); r != spec.AckResp() {
					t.Fatalf("seed %d step %d: model enqueue resp %v", seed, i, r)
				}
			case 1: // detectable dequeue
				q.PrepDequeue(0)
				applyModel(spec.PrepOp(spec.Dequeue()))
				got, ok := q.ExecDequeue(0)
				want := applyModel(spec.ExecOp(spec.Dequeue()))
				if ok && want != spec.ValResp(got) {
					t.Fatalf("seed %d step %d: impl dequeued %d, model %v", seed, i, got, want)
				}
				if !ok && want.Kind != spec.Empty {
					t.Fatalf("seed %d step %d: impl EMPTY, model %v", seed, i, want)
				}
			case 2: // plain enqueue
				v := nextV
				nextV++
				if err := q.Enqueue(0, v); err != nil {
					t.Fatal(err)
				}
				applyModel(spec.Enqueue(v))
			case 3: // plain dequeue
				got, ok := q.Dequeue(0)
				want := applyModel(spec.Dequeue())
				if ok && want != spec.ValResp(got) {
					t.Fatalf("seed %d step %d: impl dequeued %d, model %v", seed, i, got, want)
				}
				if !ok && want.Kind != spec.Empty {
					t.Fatalf("seed %d step %d: impl EMPTY, model %v", seed, i, want)
				}
			case 4: // resolve
				got := q.Resolve(0).Resp()
				want := applyModel(spec.ResolveOp())
				if got != want {
					t.Fatalf("seed %d step %d: resolve impl %v, model %v", seed, i, got, want)
				}
			}
		}
	}
}

// TestPinnedNodesNotReusedWhileXReferences exercises the recycling veto
// directly: a completed detectable enqueue keeps its node pinned (X still
// references it) even after the value is dequeued by another thread and
// heavy traffic tries to recycle everything.
func TestPinnedNodesNotReusedWhileXReferences(t *testing.T) {
	q, _ := newTestQueue(t, 2)
	if err := q.PrepEnqueue(0, 4242); err != nil {
		t.Fatal(err)
	}
	q.ExecEnqueue(0)
	if v, ok := q.Dequeue(1); !ok || v != 4242 {
		t.Fatalf("dequeue = (%d,%v)", v, ok)
	}
	// Thread 1 churns hard enough to recycle every unpinned node many
	// times over.
	for i := 0; i < 2000; i++ {
		if err := q.Enqueue(1, uint64(i)); err != nil {
			t.Fatalf("churn enqueue #%d: %v", i, err)
		}
		q.Dequeue(1)
	}
	// Thread 0's resolution must still report the original argument: if
	// the node had been recycled, the value would have been overwritten.
	res := q.Resolve(0)
	if res.Op != OpEnqueue || res.Arg != 4242 || !res.Executed {
		t.Fatalf("resolution corrupted by node reuse: %+v", res)
	}
}

// TestPinnedDequeueNodesSurviveChurn does the same for the dequeue path:
// X references the predecessor whose successor's claim mark resolve reads.
func TestPinnedDequeueNodesSurviveChurn(t *testing.T) {
	q, _ := newTestQueue(t, 2)
	mustEnqueue(t, q, 1, 7)
	q.PrepDequeue(0)
	if v, ok := q.ExecDequeue(0); !ok || v != 7 {
		t.Fatalf("ExecDequeue = (%d,%v)", v, ok)
	}
	for i := 0; i < 2000; i++ {
		if err := q.Enqueue(1, uint64(100+i)); err != nil {
			t.Fatalf("churn enqueue #%d: %v", i, err)
		}
		q.Dequeue(1)
	}
	res := q.Resolve(0)
	if res.Op != OpDequeue || !res.Executed || res.Val != 7 {
		t.Fatalf("dequeue resolution corrupted by node reuse: %+v", res)
	}
}

// TestRepeatedCrashRecoverCycles runs many crash/recover/operate cycles on
// one queue instance, auditing value conservation throughout.
func TestRepeatedCrashRecoverCycles(t *testing.T) {
	q, h := newTestQueue(t, 2)
	alive := map[uint64]bool{} // values known to be in the queue
	next := uint64(1)
	for cycle := 0; cycle < 30; cycle++ {
		h.ArmCrash(uint64(20 + cycle*13))
		pmem.RunToCrash(func() {
			for {
				v := next
				next++
				if err := q.PrepEnqueue(0, v); err != nil {
					t.Errorf("prep: %v", err)
					return
				}
				q.ExecEnqueue(0)
				alive[v] = true
				q.PrepDequeue(0)
				if got, ok := q.ExecDequeue(0); ok {
					if !alive[got] {
						t.Errorf("cycle %d: dequeued unknown/duplicate value %d", cycle, got)
						return
					}
					delete(alive, got)
				}
			}
		})
		h.Crash(pmem.NewRandomFates(int64(cycle)))
		q.Recover()
		// Reconcile the in-flight op using the resolution.
		res := q.Resolve(0)
		if res.Op == OpEnqueue {
			if res.Executed {
				alive[res.Arg] = true
			} else {
				delete(alive, res.Arg)
			}
		}
		if res.Op == OpDequeue && res.Executed && !res.Empty {
			delete(alive, res.Val)
		}
	}
	// Drain and compare against the reconciled model.
	got := map[uint64]bool{}
	for {
		v, ok := q.Dequeue(0)
		if !ok {
			break
		}
		if got[v] {
			t.Fatalf("value %d dequeued twice in final drain", v)
		}
		got[v] = true
	}
	for v := range got {
		if !alive[v] {
			t.Fatalf("final drain contained unexpected value %d", v)
		}
	}
	for v := range alive {
		if !got[v] {
			t.Fatalf("value %d lost across crash cycles", v)
		}
	}
}

// TestHeapStatsReflectFlushDiscipline asserts the flush-count structure
// that drives Figure 5a: per enqueue/dequeue pair, the detectable path
// issues more flushes than the plain path.
func TestHeapStatsReflectFlushDiscipline(t *testing.T) {
	count := func(detect bool) uint64 {
		q, h := newTestQueue(t, 1)
		before := h.Snapshot().Flushes
		for i := 0; i < 50; i++ {
			if detect {
				if err := q.PrepEnqueue(0, uint64(i)); err != nil {
					t.Fatal(err)
				}
				q.ExecEnqueue(0)
				q.PrepDequeue(0)
				q.ExecDequeue(0)
			} else {
				if err := q.Enqueue(0, uint64(i)); err != nil {
					t.Fatal(err)
				}
				q.Dequeue(0)
			}
		}
		return h.Snapshot().Flushes - before
	}
	plain := count(false)
	det := count(true)
	// Figure 3/4 structure: plain ≈ 3 flushes per pair, detectable ≈ 7.
	if plain == 0 || det <= plain {
		t.Fatalf("flush discipline broken: plain %d, detectable %d", plain, det)
	}
	ratio := float64(det) / float64(plain)
	if ratio < 1.8 || ratio > 3.0 {
		t.Fatalf("flush ratio %.2f outside the 7:3 region (plain %d, det %d)", ratio, plain, det)
	}
}
