package core

import (
	"testing"

	"repro/internal/pmem"
)

// abandonSweepAdversaries is the dirty-line suite for the abandon sweep:
// the canonical set plus biased schedules, under which most lines share
// one fate but a few defect.
func abandonSweepAdversaries(seed int64) []pmem.Adversary {
	return append(pmem.Adversaries(seed),
		pmem.NewBiasedFates(seed+10, 0.25),
		pmem.NewBiasedFates(seed+11, 0.75))
}

// TestAbandonPrepCrashSweepEnqueue injects a crash at every primitive
// memory step of the abandon-then-re-prepare sequence
//
//	PrepEnqueue(99); AbandonPrep; PrepEnqueue(7); ExecEnqueue;
//	PrepDequeue; ExecDequeue
//
// under every adversary, then recovers and checks that the withdrawn
// prepared enqueue can never be resurrected: once AbandonPrep has
// returned, Resolve never reports the abandoned operation again (in any
// state), and the value 99 never reaches the queue — while the
// re-prepared operation's resolution stays consistent with the queue's
// actual contents.
func TestAbandonPrepCrashSweepEnqueue(t *testing.T) {
	for ai, adv := range abandonSweepAdversaries(1) {
		swept := 0
		for step := uint64(1); ; step++ {
			q, h := newTestQueue(t, 1)
			phase := 0
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				if err := q.PrepEnqueue(0, 99); err != nil {
					t.Errorf("adv %d step %d: PrepEnqueue(99): %v", ai, step, err)
					return
				}
				phase = 1
				q.AbandonPrep(0)
				phase = 2
				if err := q.PrepEnqueue(0, 7); err != nil {
					t.Errorf("adv %d step %d: PrepEnqueue(7): %v", ai, step, err)
					return
				}
				phase = 3
				q.ExecEnqueue(0)
				phase = 4
				q.PrepDequeue(0)
				phase = 5
				q.ExecDequeue(0)
				phase = 6
			})
			if !h.Crashed() {
				if swept == 0 {
					t.Fatal("workload completed before the first crash point")
				}
				break // swept past the workload's end
			}
			swept++
			h.Crash(adv)
			q.Recover()
			res := q.Resolve(0)

			// The abandoned prep must never be reported after AbandonPrep
			// returned, and must never be reported as executed at all.
			if res.Op == OpEnqueue && res.Arg == 99 {
				if res.Executed {
					t.Fatalf("adv %d step %d: abandoned enqueue(99) resolved as executed", ai, step)
				}
				if phase >= 2 {
					t.Fatalf("adv %d step %d: abandoned enqueue(99) resurrected after abandon returned (phase %d)",
						ai, step, phase)
				}
			}
			// Once abandon returned, resolve may only report nothing or an
			// operation prepared afterwards: enqueue(7) (a crash can land
			// inside PrepEnqueue(7) after it persisted the new X), or —
			// once the workload reached PrepDequeue — the dequeue.
			if phase >= 2 {
				ok := res.Op == OpNone ||
					(res.Op == OpEnqueue && res.Arg == 7) ||
					(res.Op == OpDequeue && phase >= 4)
				if !ok {
					t.Fatalf("adv %d step %d: resolve after abandon (phase %d) = %+v",
						ai, step, phase, res)
				}
			}

			drained := drain(t, q, 0)
			for _, v := range drained {
				if v == 99 {
					t.Fatalf("adv %d step %d: abandoned value 99 reached the queue", ai, step)
				}
			}

			// Conservation of the re-prepared value: its enqueue's and
			// dequeue's effectiveness (from the phase reached and the
			// resolution) must match what the drain found.
			enq7 := phase >= 4 || (res.Op == OpEnqueue && res.Arg == 7 && res.Executed)
			deq7 := phase >= 6 || (res.Op == OpDequeue && res.Executed && !res.Empty && res.Val == 7)
			got7 := len(drained) == 1 && drained[0] == 7
			if len(drained) > 1 {
				t.Fatalf("adv %d step %d: drained %v, at most one value ever enqueued", ai, step, drained)
			}
			switch {
			case deq7 && got7:
				t.Fatalf("adv %d step %d: value 7 dequeued by the workload but still drained", ai, step)
			case deq7 && !enq7:
				t.Fatalf("adv %d step %d: value 7 dequeued but its enqueue never took effect", ai, step)
			case !deq7 && enq7 && !got7:
				t.Fatalf("adv %d step %d: enqueue(7) effective (phase %d, res %+v) but drain found %v",
					ai, step, phase, res, drained)
			case !deq7 && !enq7 && len(drained) != 0:
				t.Fatalf("adv %d step %d: nothing effective but drained %v", ai, step, drained)
			}

			// The recovered queue must still be fully operational.
			mustEnqueue(t, q, 0, 500)
			if after := drain(t, q, 0); len(after) != 1 || after[0] != 500 {
				t.Fatalf("adv %d step %d: post-recovery queue broken: %v", ai, step, after)
			}
		}
	}
}

// TestAbandonPrepCrashSweepDequeue is the dequeue-side sweep: a prepared
// dequeue is withdrawn, an enqueue is prepared in its place, and a crash
// at every step must never let recovery resurrect the withdrawn dequeue
// after AbandonPrep returned.
func TestAbandonPrepCrashSweepDequeue(t *testing.T) {
	for ai, adv := range abandonSweepAdversaries(2) {
		swept := 0
		for step := uint64(1); ; step++ {
			q, h := newTestQueue(t, 1)
			// A committed backlog gives the prepared dequeue something to
			// observe (its X snapshot names a real predecessor).
			mustEnqueue(t, q, 0, 11)
			mustEnqueue(t, q, 0, 12)
			phase := 0
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				q.PrepDequeue(0)
				phase = 1
				q.AbandonPrep(0)
				phase = 2
				if err := q.PrepEnqueue(0, 7); err != nil {
					t.Errorf("adv %d step %d: PrepEnqueue(7): %v", ai, step, err)
					return
				}
				phase = 3
				q.ExecEnqueue(0)
				phase = 4
			})
			if !h.Crashed() {
				if swept == 0 {
					t.Fatal("workload completed before the first crash point")
				}
				break
			}
			swept++
			h.Crash(adv)
			q.Recover()
			res := q.Resolve(0)

			if res.Op == OpDequeue {
				if res.Executed {
					t.Fatalf("adv %d step %d: withdrawn dequeue resolved as executed (%+v)", ai, step, res)
				}
				if phase >= 2 {
					t.Fatalf("adv %d step %d: withdrawn dequeue resurrected after abandon returned (phase %d)",
						ai, step, phase)
				}
			}
			if phase >= 2 && !(res.Op == OpNone || (res.Op == OpEnqueue && res.Arg == 7)) {
				t.Fatalf("adv %d step %d: resolve after abandon = %+v, want OpNone or enqueue(7)",
					ai, step, res)
			}

			// The prepared dequeue never executed, so the backlog must be
			// intact, with 7 behind it iff the enqueue took effect.
			drained := drain(t, q, 0)
			enq7 := phase >= 4 || (res.Op == OpEnqueue && res.Arg == 7 && res.Executed)
			want := []uint64{11, 12}
			if enq7 {
				want = append(want, 7)
			}
			if len(drained) != len(want) {
				t.Fatalf("adv %d step %d: drained %v, want %v (phase %d, res %+v)",
					ai, step, drained, want, phase, res)
			}
			for i := range want {
				if drained[i] != want[i] {
					t.Fatalf("adv %d step %d: drained %v, want %v", ai, step, drained, want)
				}
			}
		}
	}
}
