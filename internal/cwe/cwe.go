// Package cwe implements the paper's CASWithEffect queues (Figure 5b):
// detectable queues in which the linked list and the per-thread
// detectability word X[i] are manipulated together by Wang et al.'s
// PMwCAS, so that an operation's effect on the queue and the record of
// that effect become durable atomically. Recovery is correspondingly
// trivial — PMwCAS descriptor roll-forward/back leaves X consistent with
// the list by construction.
//
// Two variants mirror the paper's:
//
//   - General: X[i] is treated like any other shared word — it goes
//     through the full RDCSS installation.
//   - Fast: X[i] is declared Private to the PMwCAS, skipping installation
//     ("optimized for multi-word operations that access a combination of
//     shared variables ... and private variables (detectability state)"),
//     which the paper measures at up to 1.5× the General variant.
package cwe

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/ebr"
	"repro/internal/pmem"
	"repro/internal/pmwcas"
)

// Node field offsets (one line per node).
const (
	offValue  = 0
	offNext   = 1
	nodeWords = pmem.WordsPerLine
)

// Detectability tags in X[i]. They live below the PMwCAS protocol bits
// (63-61): values stored in the queue must stay below 1<<54.
const (
	enqPrepTag = uint64(1) << 57
	deqPrepTag = uint64(1) << 56
	complTag   = uint64(1) << 55
	emptyTag   = uint64(1) << 54
	tagMask    = enqPrepTag | deqPrepTag | complTag | emptyTag
)

// MaxValue is the largest enqueueable value (tags and PMwCAS flag bits
// occupy the word's top bits).
const MaxValue = uint64(1)<<54 - 1

// ErrNoNodes is returned when the node pool is exhausted.
var ErrNoNodes = errors.New("cwe: node pool exhausted")

// ErrValueRange is returned for values that collide with tag bits.
var ErrValueRange = errors.New("cwe: value exceeds MaxValue")

// Queue is a CASWithEffect detectable queue.
type Queue struct {
	h       *pmem.Heap
	mcas    *pmwcas.PMwCAS
	pool    *pmem.Pool
	rec     *ebr.Collector
	head    pmem.Addr
	tail    pmem.Addr
	xBase   pmem.Addr
	threads int
	fast    bool
}

// Config parameterizes a CASWithEffect queue.
type Config struct {
	// Threads is the number of worker threads (tids 0..Threads-1).
	Threads int
	// NodesPerThread sizes each thread's node pool.
	NodesPerThread int
	// ExtraNodes adds shared spare nodes (≥1 for the sentinel).
	ExtraNodes int
	// DescriptorsPerThread sizes the PMwCAS descriptor pool.
	DescriptorsPerThread int
	// Fast marks X[i] as PMwCAS-private (the Fast CASWithEffect queue);
	// false yields the General variant.
	Fast bool
}

// New allocates a CASWithEffect queue on h, using heap root slots rootSlot
// (queue metadata) and rootSlot+1 (PMwCAS descriptors).
func New(h *pmem.Heap, rootSlot int, cfg Config) (*Queue, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("cwe: need at least one thread, got %d", cfg.Threads)
	}
	if cfg.ExtraNodes < 1 {
		return nil, fmt.Errorf("cwe: need at least one extra node for the sentinel")
	}
	if cfg.DescriptorsPerThread <= 0 {
		cfg.DescriptorsPerThread = 8
	}
	meta, err := h.Alloc((2 + cfg.Threads) * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("cwe: metadata: %w", err)
	}
	q := &Queue{
		h:       h,
		head:    meta,
		tail:    meta + pmem.WordsPerLine,
		xBase:   meta + 2*pmem.WordsPerLine,
		threads: cfg.Threads,
		fast:    cfg.Fast,
	}
	q.mcas, err = pmwcas.New(h, rootSlot+1, cfg.Threads, cfg.DescriptorsPerThread)
	if err != nil {
		return nil, fmt.Errorf("cwe: pmwcas: %w", err)
	}
	q.pool, err = pmem.NewPool(h, pmem.PoolConfig{
		Threads:         cfg.Threads,
		BlocksPerThread: cfg.NodesPerThread,
		ExtraBlocks:     cfg.ExtraNodes,
		BlockWords:      nodeWords,
		Pinned:          q.pinned,
	})
	if err != nil {
		return nil, fmt.Errorf("cwe: node pool: %w", err)
	}
	q.rec, err = ebr.New(cfg.Threads, func(tid int, a pmem.Addr) { q.pool.Free(tid, a) })
	if err != nil {
		return nil, fmt.Errorf("cwe: reclamation: %w", err)
	}
	sentinel, ok := q.pool.Alloc(0)
	if !ok {
		return nil, fmt.Errorf("cwe: no node for sentinel")
	}
	q.h.Store(sentinel+offValue, 0)
	q.h.Store(sentinel+offNext, 0)
	q.h.Persist(sentinel)
	q.h.Store(q.head, uint64(sentinel))
	q.h.Store(q.tail, uint64(sentinel))
	q.h.PersistPair(q.head, q.tail)
	for i := 0; i < cfg.Threads; i++ {
		q.h.Store(q.xAddr(i), 0)
	}
	q.h.PersistRange(q.xBase, cfg.Threads*pmem.WordsPerLine)
	h.SetRoot(rootSlot, meta)
	return q, nil
}

// Fast reports whether this is the Fast (private-X) variant.
func (q *Queue) Fast() bool { return q.fast }

func (q *Queue) xAddr(tid int) pmem.Addr {
	return q.xBase + pmem.Addr(tid*pmem.WordsPerLine)
}

func ptrOf(x uint64) pmem.Addr { return pmem.Addr(x &^ tagMask) }

// pinned vetoes recycling of nodes referenced by any X word (coherent or
// persisted view): resolve reads the referenced node's value. The scan is
// simulator-side reclamation bookkeeping, so it reads through LoadVolatile
// (uncharged; see core.Queue.pinned).
func (q *Queue) pinned(a pmem.Addr) bool {
	tracked := q.h.Mode() == pmem.Tracked
	for i := 0; i < q.threads; i++ {
		x := q.h.LoadVolatile(q.xAddr(i))
		if ptrOf(x&^(pmwcas.DirtyFlag)) == a && x&tagMask != 0 {
			return true
		}
		if tracked {
			px := q.h.PersistedLoad(q.xAddr(i))
			if ptrOf(px&^(pmwcas.DirtyFlag)) == a && px&tagMask != 0 {
				return true
			}
		}
	}
	return false
}

// setX durably replaces X[tid] regardless of lingering protocol flags
// from a previous operation.
func (q *Queue) setX(tid int, v uint64) {
	for {
		old := q.mcas.Read(tid, q.xAddr(tid))
		if q.mcas.CASWord(tid, q.xAddr(tid), old, v) {
			return
		}
	}
}

// allocNode pops a node, forcing epoch collection with bounded retries
// when the pool is transiently dry.
func (q *Queue) allocNode(tid int) (pmem.Addr, bool) {
	for attempt := 0; attempt < 128; attempt++ {
		if a, ok := q.pool.Alloc(tid); ok {
			return a, true
		}
		q.rec.Collect(tid)
		runtime.Gosched()
	}
	return 0, false
}

// PrepEnqueue declares the detectable intent to enqueue v: it allocates
// and persists the node and records node|ENQ_PREP in X[tid].
func (q *Queue) PrepEnqueue(tid int, v uint64) error {
	if v > MaxValue {
		return fmt.Errorf("%w: %d", ErrValueRange, v)
	}
	oldX := q.mcas.Read(tid, q.xAddr(tid))
	node, ok := q.allocNode(tid)
	if !ok {
		return ErrNoNodes
	}
	q.h.Store(node+offValue, v)
	q.h.Store(node+offNext, 0)
	q.h.Persist(node)
	q.setX(tid, uint64(node)|enqPrepTag)
	if oldX&enqPrepTag != 0 && oldX&complTag == 0 {
		if old := ptrOf(oldX); old != 0 && old != node {
			// The previous prepared enqueue provably never linked (X and
			// the link commute atomically here, and recovery rolls
			// descriptors): reclaim its node.
			q.pool.Free(tid, old)
		}
	}
	return nil
}

// ExecEnqueue links the prepared node at the tail; the link and the
// completion tag in X[tid] become durable atomically through one PMwCAS.
func (q *Queue) ExecEnqueue(tid int) error {
	x := q.mcas.Read(tid, q.xAddr(tid))
	if x&enqPrepTag == 0 || x&complTag != 0 {
		return nil
	}
	node := ptrOf(x)
	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	for {
		last := pmem.Addr(q.mcas.Read(tid, q.tail))
		next := pmem.Addr(q.mcas.Read(tid, last+offNext))
		if next != 0 { // help advance the lagging tail
			q.mcas.CASWord(tid, q.tail, uint64(last), uint64(next))
			continue
		}
		ok, err := q.mcas.Apply(tid, []pmwcas.Entry{
			{Addr: last + offNext, Old: 0, New: uint64(node)},
			{Addr: q.xAddr(tid), Old: x, New: x | complTag, Private: q.fast},
		})
		if err != nil {
			return fmt.Errorf("cwe: exec-enqueue: %w", err)
		}
		if ok {
			q.mcas.CASWord(tid, q.tail, uint64(last), uint64(node))
			return nil
		}
	}
}

// PrepDequeue declares the detectable intent to dequeue.
func (q *Queue) PrepDequeue(tid int) {
	q.setX(tid, deqPrepTag)
}

// ExecDequeue removes the front value; the head swing and the completion
// record in X[tid] become durable atomically through one PMwCAS. It
// returns (0, false, nil) when the queue is empty.
func (q *Queue) ExecDequeue(tid int) (uint64, bool, error) {
	x := q.mcas.Read(tid, q.xAddr(tid))
	if x&deqPrepTag == 0 || x&(complTag|emptyTag) != 0 {
		// Not prepared, or already executed (Axiom 2 precondition).
		return 0, false, nil
	}
	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	for {
		first := pmem.Addr(q.mcas.Read(tid, q.head))
		last := pmem.Addr(q.mcas.Read(tid, q.tail))
		next := pmem.Addr(q.mcas.Read(tid, first+offNext))
		if first == last {
			if next == 0 {
				// Empty: record it atomically with a guard that the queue
				// is still in this state.
				ok, err := q.mcas.Apply(tid, []pmwcas.Entry{
					{Addr: q.head, Old: uint64(first), New: uint64(first)},
					{Addr: first + offNext, Old: 0, New: 0},
					{Addr: q.xAddr(tid), Old: x, New: x | emptyTag, Private: q.fast},
				})
				if err != nil {
					return 0, false, fmt.Errorf("cwe: exec-dequeue: %w", err)
				}
				if ok {
					return 0, false, nil
				}
				continue
			}
			q.mcas.CASWord(tid, q.tail, uint64(last), uint64(next))
			continue
		}
		ok, err := q.mcas.Apply(tid, []pmwcas.Entry{
			{Addr: q.head, Old: uint64(first), New: uint64(next)},
			{Addr: q.xAddr(tid), Old: x, New: uint64(next) | deqPrepTag | complTag, Private: q.fast},
		})
		if err != nil {
			return 0, false, fmt.Errorf("cwe: exec-dequeue: %w", err)
		}
		if ok {
			v := q.h.Load(next + offValue)
			q.rec.Retire(tid, first)
			return v, true, nil
		}
	}
}

// Enqueue is the non-detectable enqueue: the same linked-list update
// without touching X.
func (q *Queue) Enqueue(tid int, v uint64) error {
	if v > MaxValue {
		return fmt.Errorf("%w: %d", ErrValueRange, v)
	}
	node, ok := q.allocNode(tid)
	if !ok {
		return ErrNoNodes
	}
	q.h.Store(node+offValue, v)
	q.h.Store(node+offNext, 0)
	q.h.Persist(node)
	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	for {
		last := pmem.Addr(q.mcas.Read(tid, q.tail))
		next := pmem.Addr(q.mcas.Read(tid, last+offNext))
		if next != 0 {
			q.mcas.CASWord(tid, q.tail, uint64(last), uint64(next))
			continue
		}
		if q.mcas.CASWord(tid, last+offNext, 0, uint64(node)) {
			q.mcas.CASWord(tid, q.tail, uint64(last), uint64(node))
			return nil
		}
	}
}

// Dequeue is the non-detectable dequeue.
func (q *Queue) Dequeue(tid int) (uint64, bool) {
	q.rec.Enter(tid)
	defer q.rec.Exit(tid)
	for {
		first := pmem.Addr(q.mcas.Read(tid, q.head))
		last := pmem.Addr(q.mcas.Read(tid, q.tail))
		next := pmem.Addr(q.mcas.Read(tid, first+offNext))
		if first == last {
			if next == 0 {
				return 0, false
			}
			q.mcas.CASWord(tid, q.tail, uint64(last), uint64(next))
			continue
		}
		if q.mcas.CASWord(tid, q.head, uint64(first), uint64(next)) {
			v := q.h.Load(next + offValue)
			q.rec.Retire(tid, first)
			return v, true
		}
	}
}

// Resolution mirrors core.Resolution for the CASWithEffect queues.
type Resolution struct {
	IsEnqueue bool
	IsDequeue bool
	Arg       uint64
	Executed  bool
	Val       uint64
	Empty     bool
}

// Resolve reports the status of the most recently prepared operation.
// Because X and the structure commute atomically, there is no ambiguous
// middle state to analyze.
func (q *Queue) Resolve(tid int) Resolution {
	x := q.mcas.Read(tid, q.xAddr(tid))
	switch {
	case x&enqPrepTag != 0:
		node := ptrOf(x)
		return Resolution{
			IsEnqueue: true,
			Arg:       q.h.Load(node + offValue),
			Executed:  x&complTag != 0,
		}
	case x&deqPrepTag != 0:
		res := Resolution{IsDequeue: true}
		switch {
		case x&emptyTag != 0:
			res.Executed = true
			res.Empty = true
		case x&complTag != 0:
			res.Executed = true
			res.Val = q.h.Load(ptrOf(x) + offValue)
		}
		return res
	default:
		return Resolution{}
	}
}

// AbandonPrep withdraws tid's currently prepared-but-unexecuted
// operation, durably clearing X[tid] and returning the node of an
// unlinked prepared enqueue to the pool — the withdrawal discipline a
// multi-shard front-end needs (see core.Queue.AbandonPrep). Calling it
// while the prepared operation has already executed, or concurrently
// with the owner's own prep/exec, violates the per-process (A, R)
// contract; after it returns, Resolve(tid) reports no operation.
func (q *Queue) AbandonPrep(tid int) {
	x := q.mcas.Read(tid, q.xAddr(tid))
	if x == 0 {
		return
	}
	// Clear X first (setX persists through the PMwCAS word protocol) so
	// no crash can resurrect the abandoned intent, then reclaim.
	q.setX(tid, 0)
	if x&enqPrepTag != 0 && x&complTag == 0 {
		if node := ptrOf(x); node != 0 {
			q.pool.Free(tid, node)
		}
	}
}

// Recover restores the queue after a crash: PMwCAS descriptor recovery
// rolls every in-flight operation forward or back (which leaves head and
// X mutually consistent by construction), then the tail is re-derived and
// the volatile pool state rebuilt.
//
// Contract (shared by core.Queue.Recover and stack.Stack.Recover): it
// must run single-threaded, after Heap.Crash and before any thread
// resumes operations, and it is idempotent — running it again (e.g.
// after a crash during recovery itself) reproduces the same state.
func (q *Queue) Recover() {
	q.mcas.Recover()
	// Tail may lag (its advance is a separate single-word CAS, persisted
	// on each swing but possibly one op behind): walk to the real last
	// node and persist.
	head := pmem.Addr(q.clean(q.head))
	lastNode := head
	live := map[pmem.Addr]bool{}
	for n := head; n != 0; n = pmem.Addr(q.clean(n + offNext)) {
		live[n] = true
		lastNode = n
	}
	q.h.Store(q.tail, uint64(lastNode))
	q.h.Persist(q.tail)
	for i := 0; i < q.threads; i++ {
		if p := ptrOf(q.clean(q.xAddr(i))); p != 0 {
			live[p] = true
		}
	}
	q.rec.Reset()
	q.pool.Sweep(func(a pmem.Addr) bool { return live[a] })
}

// clean reads a word post-recovery, stripping a (harmless) residual dirty
// bit left in the persisted image.
func (q *Queue) clean(a pmem.Addr) uint64 {
	return q.h.Load(a) &^ pmwcas.DirtyFlag
}

// ResetVolatile re-initializes the queue's volatile companions (EBR)
// without touching persistent state. It must be called once, before
// threads resume, by any single caller (see core.Queue.ResetVolatile).
func (q *Queue) ResetVolatile() {
	q.rec.Reset()
}
