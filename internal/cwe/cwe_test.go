package cwe

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func variants(t *testing.T, threads int) map[string]*Queue {
	t.Helper()
	out := map[string]*Queue{}
	for _, fast := range []bool{false, true} {
		h, err := pmem.New(pmem.Config{Words: 1 << 17, Mode: pmem.Tracked})
		if err != nil {
			t.Fatal(err)
		}
		q, err := New(h, 0, Config{
			Threads: threads, NodesPerThread: 64, ExtraNodes: 8,
			DescriptorsPerThread: 8, Fast: fast,
		})
		if err != nil {
			t.Fatal(err)
		}
		if fast {
			out["fast"] = q
		} else {
			out["general"] = q
		}
	}
	return out
}

func newVariant(t *testing.T, fast bool, threads, nodes int) (*Queue, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 17, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	q, err := New(h, 0, Config{
		Threads: threads, NodesPerThread: nodes, ExtraNodes: 4,
		DescriptorsPerThread: 8, Fast: fast,
	})
	if err != nil {
		t.Fatal(err)
	}
	return q, h
}

func drainCWE(t *testing.T, q *Queue, tid int) []uint64 {
	t.Helper()
	var out []uint64
	for i := 0; i < 100_000; i++ {
		v, ok := q.Dequeue(tid)
		if !ok {
			return out
		}
		out = append(out, v)
	}
	t.Fatal("drain did not terminate")
	return nil
}

func TestNewValidation(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 14, Mode: pmem.Tracked})
	if _, err := New(h, 0, Config{Threads: 0, NodesPerThread: 1, ExtraNodes: 1}); err == nil {
		t.Fatal("accepted zero threads")
	}
	if _, err := New(h, 0, Config{Threads: 1, NodesPerThread: 1}); err == nil {
		t.Fatal("accepted no sentinel room")
	}
}

func TestValueRange(t *testing.T) {
	for name, q := range variants(t, 1) {
		t.Run(name, func(t *testing.T) {
			if err := q.Enqueue(0, MaxValue+1); !errors.Is(err, ErrValueRange) {
				t.Fatalf("Enqueue(MaxValue+1) err = %v", err)
			}
			if err := q.PrepEnqueue(0, MaxValue+1); !errors.Is(err, ErrValueRange) {
				t.Fatalf("PrepEnqueue(MaxValue+1) err = %v", err)
			}
			if err := q.Enqueue(0, MaxValue); err != nil {
				t.Fatalf("Enqueue(MaxValue): %v", err)
			}
			if v, ok := q.Dequeue(0); !ok || v != MaxValue {
				t.Fatalf("Dequeue = (%d,%v)", v, ok)
			}
		})
	}
}

func TestFIFOBothVariants(t *testing.T) {
	for name, q := range variants(t, 2) {
		t.Run(name, func(t *testing.T) {
			for v := uint64(1); v <= 8; v++ {
				if err := q.Enqueue(0, v); err != nil {
					t.Fatal(err)
				}
			}
			got := drainCWE(t, q, 1)
			if len(got) != 8 {
				t.Fatalf("drained %v", got)
			}
			for i, v := range got {
				if v != uint64(i+1) {
					t.Fatalf("drained %v", got)
				}
			}
		})
	}
}

func TestDetectableRoundTrip(t *testing.T) {
	for name, q := range variants(t, 1) {
		t.Run(name, func(t *testing.T) {
			if err := q.PrepEnqueue(0, 7); err != nil {
				t.Fatal(err)
			}
			if res := q.Resolve(0); !res.IsEnqueue || res.Executed || res.Arg != 7 {
				t.Fatalf("resolve after prep = %+v", res)
			}
			if err := q.ExecEnqueue(0); err != nil {
				t.Fatal(err)
			}
			if res := q.Resolve(0); !res.IsEnqueue || !res.Executed || res.Arg != 7 {
				t.Fatalf("resolve after exec = %+v", res)
			}
			q.PrepDequeue(0)
			if res := q.Resolve(0); !res.IsDequeue || res.Executed {
				t.Fatalf("resolve after prep-dequeue = %+v", res)
			}
			v, ok, err := q.ExecDequeue(0)
			if err != nil || !ok || v != 7 {
				t.Fatalf("ExecDequeue = (%d,%v,%v)", v, ok, err)
			}
			if res := q.Resolve(0); !res.IsDequeue || !res.Executed || res.Val != 7 || res.Empty {
				t.Fatalf("resolve after exec-dequeue = %+v", res)
			}
		})
	}
}

func TestEmptyDequeueDetectable(t *testing.T) {
	for name, q := range variants(t, 1) {
		t.Run(name, func(t *testing.T) {
			q.PrepDequeue(0)
			v, ok, err := q.ExecDequeue(0)
			if err != nil || ok {
				t.Fatalf("ExecDequeue on empty = (%d,%v,%v)", v, ok, err)
			}
			if res := q.Resolve(0); !res.IsDequeue || !res.Executed || !res.Empty {
				t.Fatalf("resolve = %+v, want executed EMPTY", res)
			}
		})
	}
}

func TestExecTwiceIsNoop(t *testing.T) {
	for name, q := range variants(t, 1) {
		t.Run(name, func(t *testing.T) {
			if err := q.PrepEnqueue(0, 4); err != nil {
				t.Fatal(err)
			}
			if err := q.ExecEnqueue(0); err != nil {
				t.Fatal(err)
			}
			if err := q.ExecEnqueue(0); err != nil {
				t.Fatal(err)
			}
			got := drainCWE(t, q, 0)
			if len(got) != 1 || got[0] != 4 {
				t.Fatalf("drained %v, want [4]", got)
			}
		})
	}
}

func TestNodesRecycle(t *testing.T) {
	for _, fast := range []bool{false, true} {
		q, _ := newVariant(t, fast, 1, 8)
		for i := 0; i < 800; i++ {
			if err := q.Enqueue(0, uint64(i)); err != nil {
				t.Fatalf("fast=%v enqueue #%d: %v", fast, i, err)
			}
			if v, ok := q.Dequeue(0); !ok || v != uint64(i) {
				t.Fatalf("fast=%v dequeue #%d = (%d,%v)", fast, i, v, ok)
			}
		}
	}
}

func TestConcurrentDetectableConservation(t *testing.T) {
	const threads = 3
	const pairs = 150
	for name, q := range variants(t, threads) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			var mu sync.Mutex
			seen := map[uint64]int{}
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < pairs; i++ {
						v := uint64(tid+1)<<32 | uint64(i)
						if err := q.PrepEnqueue(tid, v); err != nil {
							t.Errorf("prep: %v", err)
							return
						}
						if err := q.ExecEnqueue(tid); err != nil {
							t.Errorf("exec: %v", err)
							return
						}
						q.PrepDequeue(tid)
						got, ok, err := q.ExecDequeue(tid)
						if err != nil {
							t.Errorf("deq: %v", err)
							return
						}
						if ok {
							mu.Lock()
							seen[got]++
							mu.Unlock()
						}
					}
				}(tid)
			}
			wg.Wait()
			for _, v := range drainCWE(t, q, 0) {
				seen[v]++
			}
			if len(seen) != threads*pairs {
				t.Fatalf("saw %d distinct values, want %d", len(seen), threads*pairs)
			}
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("value %d dequeued %d times", v, n)
				}
			}
		})
	}
}

func TestCrashSweepDetectable(t *testing.T) {
	// The CWE analogue of the DSS queue's crash sweep. Because X and the
	// structure move atomically, the legal outcome set is tighter than the
	// DSS queue's: an executed tag always has its structural effect.
	for _, fast := range []bool{false, true} {
		for _, adv := range pmem.Adversaries(37) {
			for step := uint64(1); ; step++ {
				q, h := newVariant(t, fast, 1, 16)
				if err := q.Enqueue(0, 1); err != nil {
					t.Fatal(err)
				}
				if err := q.Enqueue(0, 2); err != nil {
					t.Fatal(err)
				}
				h.ArmCrash(step)
				crashed := pmem.RunToCrash(func() {
					if err := q.PrepEnqueue(0, 10); err != nil {
						t.Fatal(err)
					}
					if err := q.ExecEnqueue(0); err != nil {
						t.Fatal(err)
					}
					q.PrepDequeue(0)
					_, _, _ = q.ExecDequeue(0)
				})
				if !crashed {
					break
				}
				h.Crash(adv)
				q.Recover()
				res := q.Resolve(0)
				rest := drainCWE(t, q, 0)
				has10 := false
				for _, v := range rest {
					if v == 10 {
						has10 = true
					}
				}
				dequeuedOne := len(rest) == 0 || rest[0] != 1
				switch {
				case !res.IsEnqueue && !res.IsDequeue:
					if has10 || dequeuedOne {
						t.Fatalf("fast=%v step %d: no op resolved but queue %v", fast, step, rest)
					}
				case res.IsEnqueue && res.Arg == 10:
					if res.Executed != has10 || dequeuedOne {
						t.Fatalf("fast=%v step %d: %+v vs queue %v", fast, step, res, rest)
					}
				case res.IsDequeue && res.Executed && !res.Empty:
					if res.Val != 1 || !dequeuedOne || !has10 {
						t.Fatalf("fast=%v step %d: %+v vs queue %v", fast, step, res, rest)
					}
				case res.IsDequeue && !res.Executed:
					if dequeuedOne || !has10 {
						t.Fatalf("fast=%v step %d: %+v vs queue %v", fast, step, res, rest)
					}
				default:
					t.Fatalf("fast=%v step %d: unexpected resolution %+v (queue %v)", fast, step, res, rest)
				}
			}
		}
	}
}

func TestCrashSweepEmptyDequeue(t *testing.T) {
	for _, fast := range []bool{false, true} {
		for step := uint64(1); ; step++ {
			q, h := newVariant(t, fast, 1, 8)
			h.ArmCrash(step)
			crashed := pmem.RunToCrash(func() {
				q.PrepDequeue(0)
				_, _, _ = q.ExecDequeue(0)
			})
			if !crashed {
				break
			}
			h.Crash(pmem.KeepAll{})
			q.Recover()
			res := q.Resolve(0)
			if rest := drainCWE(t, q, 0); len(rest) != 0 {
				t.Fatalf("fast=%v step %d: empty queue grew %v", fast, step, rest)
			}
			legal := (!res.IsEnqueue && !res.IsDequeue) ||
				(res.IsDequeue && !res.Executed) ||
				(res.IsDequeue && res.Executed && res.Empty)
			if !legal {
				t.Fatalf("fast=%v step %d: illegal resolution %+v", fast, step, res)
			}
		}
	}
}

func TestUsableAfterRecovery(t *testing.T) {
	for _, fast := range []bool{false, true} {
		q, h := newVariant(t, fast, 2, 16)
		if err := q.Enqueue(0, 1); err != nil {
			t.Fatal(err)
		}
		h.ArmCrash(30)
		pmem.RunToCrash(func() {
			if err := q.PrepEnqueue(0, 10); err != nil {
				t.Fatal(err)
			}
			_ = q.ExecEnqueue(0)
		})
		h.Crash(pmem.NewRandomFates(9))
		q.Recover()
		for i := 0; i < 50; i++ {
			if err := q.Enqueue(1, uint64(100+i)); err != nil {
				t.Fatalf("fast=%v post-recovery enqueue: %v", fast, err)
			}
			if _, ok := q.Dequeue(1); !ok {
				t.Fatalf("fast=%v post-recovery dequeue failed", fast)
			}
		}
	}
}

func TestFastAccessor(t *testing.T) {
	qs := variants(t, 1)
	if qs["fast"].Fast() != true || qs["general"].Fast() != false {
		t.Fatal("Fast() does not reflect the variant")
	}
}
