package hmap

import (
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/pmem"
	"repro/internal/spec"
)

func newTestMap(t *testing.T, threads, buckets int) (*Map, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 17, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(h, 0, Config{Threads: threads, Buckets: buckets, NodesPerThread: 8, ExtraNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	return m, h
}

func TestNewValidation(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 12, Mode: pmem.Tracked})
	if _, err := New(h, 0, Config{Threads: 0, NodesPerThread: 1}); err == nil {
		t.Fatal("accepted zero threads")
	}
	if _, err := New(h, 0, Config{Threads: 1, NodesPerThread: 0}); err == nil {
		t.Fatal("accepted zero nodes per thread")
	}
}

func TestBasicOps(t *testing.T) {
	m, _ := newTestMap(t, 2, 4)
	if _, ok := m.Get(0, 1); ok {
		t.Fatal("get on empty map found a value")
	}
	if err := m.Put(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(1, 2, 20); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get(0, 1); !ok || v != 10 {
		t.Fatalf("get(1) = (%d, %v), want (10, true)", v, ok)
	}
	if err := m.Put(0, 1, 11); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get(1, 1); !ok || v != 11 {
		t.Fatalf("get(1) after upsert = (%d, %v), want (11, true)", v, ok)
	}
	if ok, w, err := m.CAS(0, 2, spec.PackCAS(20, 21)); err != nil || !ok || w != 20 {
		t.Fatalf("cas(2: 20→21) = (%v, %d, %v), want success witnessing 20", ok, w, err)
	}
	if ok, w, err := m.CAS(0, 2, spec.PackCAS(20, 22)); err != nil || ok || w != 21 {
		t.Fatalf("cas(2: 20→22) = (%v, %d, %v), want failure witnessing 21", ok, w, err)
	}
	if ok, w, err := m.CAS(0, 9, spec.PackCAS(1, 2)); err != nil || ok || w != 0 {
		t.Fatalf("cas on absent key = (%v, %d, %v), want failure witnessing 0", ok, w, err)
	}
	if v, ok, err := m.Delete(1, 1); err != nil || !ok || v != 11 {
		t.Fatalf("del(1) = (%d, %v, %v), want removing 11", v, ok, err)
	}
	if _, ok, err := m.Delete(1, 1); err != nil || ok {
		t.Fatal("second del(1) found a value")
	}
	if _, ok := m.Get(0, 1); ok {
		t.Fatal("get after del found a value")
	}
	if v, ok := m.Get(0, 2); !ok || v != 21 {
		t.Fatalf("get(2) = (%d, %v), want (21, true)", v, ok)
	}
}

func TestBucketFull(t *testing.T) {
	m, _ := newTestMap(t, 1, 1) // every key lands in the one bucket
	for i := 0; i < EntriesPerBucket; i++ {
		if err := m.Put(0, uint64(i), uint64(100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := m.Put(0, 999, 1); err != ErrBucketFull {
		t.Fatalf("overflow put = %v, want ErrBucketFull", err)
	}
	// Upsert of a present key must still succeed on a full bucket.
	if err := m.Put(0, 3, 333); err != nil {
		t.Fatalf("upsert on full bucket: %v", err)
	}
	if v, ok := m.Get(0, 3); !ok || v != 333 {
		t.Fatalf("get(3) = (%d, %v), want (333, true)", v, ok)
	}
}

func TestDetectableOps(t *testing.T) {
	m, _ := newTestMap(t, 1, 4)

	m.PrepGet(0, 1)
	if v, ok := m.ExecGet(0); ok || v != 0 {
		t.Fatalf("detectable get on empty = (%d, %v), want absent", v, ok)
	}
	res := m.Resolve(0)
	if res.Op != OpGet || res.Key != 1 || !res.Executed || res.Present {
		t.Fatalf("empty-get resolution = %+v", res)
	}

	if err := m.PrepPut(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	res = m.Resolve(0)
	if res.Op != OpPut || res.Key != 1 || res.Arg != 10 || res.Executed {
		t.Fatalf("prepared put resolution = %+v", res)
	}
	if err := m.ExecPut(0); err != nil {
		t.Fatal(err)
	}
	res = m.Resolve(0)
	if res.Op != OpPut || !res.Executed {
		t.Fatalf("executed put resolution = %+v", res)
	}

	m.PrepGet(0, 1)
	if v, ok := m.ExecGet(0); !ok || v != 10 {
		t.Fatalf("detectable get = (%d, %v), want (10, true)", v, ok)
	}
	res = m.Resolve(0)
	if res.Op != OpGet || !res.Executed || !res.Present || res.Val != 10 {
		t.Fatalf("get resolution = %+v", res)
	}

	if err := m.PrepCAS(0, 1, spec.PackCAS(10, 11)); err != nil {
		t.Fatal(err)
	}
	if ok, w, err := m.ExecCAS(0); err != nil || !ok || w != 10 {
		t.Fatalf("cas exec = (%v, %d, %v), want success witnessing 10", ok, w, err)
	}
	res = m.Resolve(0)
	if res.Op != OpCAS || !res.Executed || res.Val != 1 || res.Val2 != 10 {
		t.Fatalf("successful cas resolution = %+v", res)
	}

	if err := m.PrepCAS(0, 1, spec.PackCAS(99, 12)); err != nil {
		t.Fatal(err)
	}
	if ok, w, err := m.ExecCAS(0); err != nil || ok || w != 11 {
		t.Fatalf("failing cas exec = (%v, %d, %v), want failure witnessing 11", ok, w, err)
	}
	res = m.Resolve(0)
	if res.Op != OpCAS || !res.Executed || res.Val != 0 || res.Val2 != 11 {
		t.Fatalf("failed cas resolution = %+v", res)
	}

	if err := m.PrepDelete(0, 1); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := m.ExecDelete(0); err != nil || !ok || v != 11 {
		t.Fatalf("del exec = (%d, %v, %v), want removing 11", v, ok, err)
	}
	res = m.Resolve(0)
	if res.Op != OpDelete || !res.Executed || !res.Present || res.Val != 11 {
		t.Fatalf("del resolution = %+v", res)
	}

	if err := m.PrepDelete(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := m.ExecDelete(0); err != nil || ok {
		t.Fatal("del of removed key found a value")
	}
	res = m.Resolve(0)
	if res.Op != OpDelete || !res.Executed || res.Present {
		t.Fatalf("empty-del resolution = %+v", res)
	}
}

// TestCrashSweepConformance is the map's Theorem 1 analogue: crash at
// every primitive memory step of a detectable put; put(other bucket);
// del; mcas(hit); mcas(miss); get workload under every adversary,
// recover, resolve, read the touched keys non-detectably — and check the
// whole history against D⟨map⟩ under strict linearizability.
func TestCrashSweepConformance(t *testing.T) {
	for ai, adv := range pmem.Adversaries(91) {
		swept := 0
		for step := uint64(1); ; step++ {
			m, h := newTestMap(t, 1, 4)
			rec := check.NewRecorder()
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				rec.Begin(0, spec.PrepOp(spec.Put(1, 10)))
				if err := m.PrepPut(0, 1, 10); err != nil {
					return
				}
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.Put(1, 10)))
				if err := m.ExecPut(0); err != nil {
					return
				}
				rec.End(0, spec.AckResp())

				rec.Begin(0, spec.PrepOp(spec.Put(2, 20)))
				if err := m.PrepPut(0, 2, 20); err != nil {
					return
				}
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.Put(2, 20)))
				if err := m.ExecPut(0); err != nil {
					return
				}
				rec.End(0, spec.AckResp())

				rec.Begin(0, spec.PrepOp(spec.Del(1)))
				if err := m.PrepDelete(0, 1); err != nil {
					return
				}
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.Del(1)))
				v, ok, err := m.ExecDelete(0)
				if err != nil {
					return
				}
				rec.End(0, presentResp(v, ok))

				rec.Begin(0, spec.PrepOp(spec.MCAS(2, 20, 30)))
				if err := m.PrepCAS(0, 2, spec.PackCAS(20, 30)); err != nil {
					return
				}
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.MCAS(2, 20, 30)))
				cok, w, err := m.ExecCAS(0)
				if err != nil {
					return
				}
				rec.End(0, casResp(cok, w))

				rec.Begin(0, spec.PrepOp(spec.MCAS(2, 99, 40)))
				if err := m.PrepCAS(0, 2, spec.PackCAS(99, 40)); err != nil {
					return
				}
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.MCAS(2, 99, 40)))
				cok, w, err = m.ExecCAS(0)
				if err != nil {
					return
				}
				rec.End(0, casResp(cok, w))

				rec.Begin(0, spec.PrepOp(spec.Get(2)))
				m.PrepGet(0, 2)
				rec.End(0, spec.BottomResp())
				rec.Begin(0, spec.ExecOp(spec.Get(2)))
				v, ok = m.ExecGet(0)
				rec.End(0, presentResp(v, ok))
			})
			if !h.Crashed() {
				if swept == 0 {
					t.Fatal("workload completed before the first crash point")
				}
				break
			}
			swept++
			rec.CrashAll()
			h.Crash(adv)
			m.Recover()
			rec.Begin(0, spec.ResolveOp())
			rec.End(0, m.Resolve(0).Resp())
			for _, k := range []uint64{1, 2} {
				rec.Begin(0, spec.Get(k))
				v, ok := m.Get(0, k)
				rec.End(0, presentResp(v, ok))
			}

			hist := rec.History()
			d := spec.Detectable(spec.NewMap(), 1)
			if r := check.StrictlyLinearizable(d, hist); !r.OK {
				t.Fatalf("adv %d step %d: map history not strictly linearizable:\n%s",
					ai, step, check.FormatHistory(hist))
			}
		}
	}
}

func presentResp(v uint64, ok bool) spec.Resp {
	if ok {
		return spec.ValResp(v)
	}
	return spec.EmptyResp()
}

func casResp(ok bool, w uint64) spec.Resp {
	if ok {
		return spec.ValResp2(1, w)
	}
	return spec.ValResp2(0, w)
}

// snapshot reads every key the tests touch through the non-detectable
// Get (state comparison for the idempotence check).
func snapshot(m *Map, keys []uint64) map[uint64]uint64 {
	out := map[uint64]uint64{}
	for _, k := range keys {
		if v, ok := m.Get(0, k); ok {
			out[k] = v
		}
	}
	return out
}

// TestDoubleRecoverIdempotent crashes at every step and runs Recover
// twice: the second run must leave the same resolution, the same
// contents and the same pool occupancy.
func TestDoubleRecoverIdempotent(t *testing.T) {
	keys := []uint64{1, 2}
	for ai, adv := range pmem.Adversaries(17) {
		for step := uint64(1); ; step++ {
			m, h := newTestMap(t, 1, 4)
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				if err := m.PrepPut(0, 1, 10); err != nil {
					return
				}
				if err := m.ExecPut(0); err != nil {
					return
				}
				if err := m.PrepPut(0, 2, 20); err != nil {
					return
				}
				if err := m.ExecPut(0); err != nil {
					return
				}
				if err := m.PrepDelete(0, 1); err != nil {
					return
				}
				if _, _, err := m.ExecDelete(0); err != nil {
					return
				}
			})
			if !h.Crashed() {
				break
			}
			h.Crash(adv)
			m.Recover()
			res1 := m.Resolve(0)
			s1 := snapshot(m, keys)
			free1 := m.FreeNodes()
			m.Recover()
			res2 := m.Resolve(0)
			s2 := snapshot(m, keys)
			free2 := m.FreeNodes()
			if res1 != res2 || free1 != free2 || len(s1) != len(s2) {
				t.Fatalf("adv %d step %d: second Recover changed state: (%+v, %v, %d) → (%+v, %v, %d)",
					ai, step, res1, s1, free1, res2, s2, free2)
			}
			for k, v := range s1 {
				if s2[k] != v {
					t.Fatalf("adv %d step %d: second Recover changed key %d: %d → %d",
						ai, step, k, v, s2[k])
				}
			}
		}
	}
}

// TestAbandonPrepCrashSweep injects a crash at every step of the
// abandon-then-re-prepare sequence
//
//	PrepPut(1, 99); AbandonPrep; PrepPut(1, 7); ExecPut
//
// under every adversary: after recovery the withdrawn put must never be
// resurrected nor reported executed, and the value 99 must never be
// observable in the map.
func TestAbandonPrepCrashSweep(t *testing.T) {
	for ai, adv := range append(pmem.Adversaries(3),
		pmem.NewBiasedFates(13, 0.25), pmem.NewBiasedFates(14, 0.75)) {
		swept := 0
		for step := uint64(1); ; step++ {
			m, h := newTestMap(t, 1, 4)
			phase := 0
			h.ArmCrash(step)
			pmem.RunToCrash(func() {
				if err := m.PrepPut(0, 1, 99); err != nil {
					t.Errorf("adv %d step %d: PrepPut(99): %v", ai, step, err)
					return
				}
				phase = 1
				m.AbandonPrep(0)
				phase = 2
				if err := m.PrepPut(0, 1, 7); err != nil {
					t.Errorf("adv %d step %d: PrepPut(7): %v", ai, step, err)
					return
				}
				phase = 3
				if err := m.ExecPut(0); err != nil {
					t.Errorf("adv %d step %d: ExecPut(7): %v", ai, step, err)
					return
				}
				phase = 4
			})
			if !h.Crashed() {
				if swept == 0 {
					t.Fatal("workload completed before the first crash point")
				}
				break
			}
			swept++
			h.Crash(adv)
			m.Recover()
			res := m.Resolve(0)

			if res.Op == OpPut && res.Arg == 99 {
				if res.Executed {
					t.Fatalf("adv %d step %d: abandoned put(99) resolved as executed", ai, step)
				}
				if phase >= 2 {
					t.Fatalf("adv %d step %d: abandoned put(99) resurrected after abandon returned (phase %d)",
						ai, step, phase)
				}
			}
			if phase >= 2 && !(res.Op == OpNone || (res.Op == OpPut && res.Arg == 7)) {
				t.Fatalf("adv %d step %d: resolve after abandon (phase %d) = %+v",
					ai, step, phase, res)
			}
			if v, ok := m.Get(0, 1); ok && v == 99 {
				t.Fatalf("adv %d step %d: abandoned value 99 reached the map", ai, step)
			} else if ok && v != 7 {
				t.Fatalf("adv %d step %d: key 1 holds %d, want absent or 7", ai, step, v)
			}

			// The recovered map must still be fully operational.
			if err := m.Put(0, 1, 500); err != nil {
				t.Fatal(err)
			}
			if v, ok := m.Get(0, 1); !ok || v != 500 {
				t.Fatalf("adv %d step %d: post-recovery map broken: (%d, %v)", ai, step, v, ok)
			}
		}
	}
}

// TestConcurrentDeleteExactlyOnce pre-populates keys with globally
// unique values, runs concurrent detectable deletes racing over them
// into a crash, and audits: each value may be returned by at most one
// delete — across completed returns and crash resolutions — exactly the
// map analogue of the queue's exactly-once delivery.
func TestConcurrentDeleteExactlyOnce(t *testing.T) {
	const threads = 3
	const keys = 12
	for trial := 0; trial < 30; trial++ {
		h, err := pmem.New(pmem.Config{Words: 1 << 17, Mode: pmem.Tracked})
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(h, 0, Config{Threads: threads, Buckets: 4, NodesPerThread: 8, ExtraNodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k <= keys; k++ {
			if err := m.Put(0, k, 1000+k); err != nil {
				t.Fatal(err)
			}
		}
		h.ArmCrash(uint64(60 + trial*37))
		var wg sync.WaitGroup
		var mu sync.Mutex
		removed := map[uint64]int{}
		last := make([]uint64, threads) // key of the thread's in-flight delete
		done := make([]bool, threads)
		for tid := 0; tid < threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				pmem.RunToCrash(func() {
					for i := 0; ; i++ {
						k := uint64((tid*7+i*3)%keys) + 1
						mu.Lock()
						last[tid], done[tid] = k, false
						mu.Unlock()
						if err := m.PrepDelete(tid, k); err != nil {
							t.Errorf("prep: %v", err)
							return
						}
						v, ok, err := m.ExecDelete(tid)
						if err != nil {
							t.Errorf("exec: %v", err)
							return
						}
						mu.Lock()
						if ok {
							removed[v]++
						}
						done[tid] = true
						mu.Unlock()
					}
				})
			}(tid)
		}
		wg.Wait()
		h.Crash(pmem.NewRandomFates(int64(trial)))
		m.Recover()
		for tid := 0; tid < threads; tid++ {
			res := m.Resolve(tid)
			if res.Op != OpDelete {
				continue
			}
			if res.Key == last[tid] && !done[tid] && res.Executed && res.Present {
				// The in-flight delete's removal was only recorded by the
				// recovery settlement.
				removed[res.Val]++
			}
		}
		for v, n := range removed {
			if n > 1 {
				t.Fatalf("trial %d: value %d removed %d times", trial, v, n)
			}
			if v < 1001 || v > 1000+keys {
				t.Fatalf("trial %d: removed value %d was never put", trial, v)
			}
		}
		// A removed value must no longer be observable.
		for k := uint64(1); k <= keys; k++ {
			if v, ok := m.Get(0, k); ok && removed[v] > 0 {
				t.Fatalf("trial %d: value %d both removed and still present at key %d", trial, v, k)
			}
		}
	}
}

// TestSpaceBound is the per-process space accounting check: a detectable
// map over n processes and B buckets needs only O(n + B) snapshot nodes
// in steady state — one live node per populated bucket, at most one
// pinned node per process for its latest resolution, plus the
// reclamation pipeline's slack — regardless of the operation count.
func TestSpaceBound(t *testing.T) {
	const threads = 4
	const buckets = 4
	m, _ := newTestMap(t, threads, buckets)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := uint64(tid%buckets + 1)
				if err := m.PrepPut(tid, k, uint64(tid)<<32|uint64(i)); err != nil {
					t.Errorf("prep: %v", err)
					return
				}
				if err := m.ExecPut(tid); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	m.Quiesce()
	inUse := m.Capacity() - m.FreeNodes()
	// One node per thread pinned by its last resolution, one live node
	// per bucket, and at most one parked node per thread awaiting
	// unpinning.
	if bound := 2*threads + buckets; inUse > bound {
		t.Fatalf("in-use nodes = %d after quiesce, want ≤ %d (O(threads+buckets), not O(ops))",
			inUse, bound)
	}
}

// TestAttachResumes builds a map, re-attaches a second handle to the
// same heap image, recovers it and resumes operations.
func TestAttachResumes(t *testing.T) {
	m, h := newTestMap(t, 2, 4)
	if err := m.Put(0, 1, 42); err != nil {
		t.Fatal(err)
	}
	if err := m.PrepDelete(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.ExecDelete(1); err != nil {
		t.Fatal(err)
	}

	h.Crash(pmem.KeepAll{})
	m2, err := Attach(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2.Recover()
	res := m2.Resolve(1)
	if res.Op != OpDelete || !res.Executed || !res.Present || res.Val != 42 {
		t.Fatalf("re-attached resolution = %+v, want executed delete removing 42", res)
	}
	if _, ok := m2.Get(0, 1); ok {
		t.Fatal("re-attached map still holds the deleted key")
	}
	if err := m2.Put(0, 2, 7); err != nil {
		t.Fatal(err)
	}
	if v, ok := m2.Get(1, 2); !ok || v != 7 {
		t.Fatalf("re-attached put/get = (%d, %v), want (7, true)", v, ok)
	}
}
