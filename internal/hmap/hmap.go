// Package hmap applies the DSS transformation to a keyed type: a
// lock-free, strictly linearizable, detectable fixed-bucket hash map
// from 64-bit keys to 64-bit values. It is built from per-bucket
// detectable primitives: each bucket is an independent snapshot chain in
// the style of the swap/CAS register (internal/reg) — mutators install
// an immutable bucket-snapshot node by CAS on the bucket head, so an
// operation verifiably took effect iff its node is the bucket's current
// node or was later displaced (its taken flag is set). Buckets never
// interact: two operations contend only when their keys hash to the
// same bucket, which is what makes the map's Op.Key a true sub-object
// address (dss.Type.KeyRouted) and key-hash shard routing exact.
//
// Operations: put(k,v) upserts (Ack), get(k) returns the value or EMPTY,
// del(k) returns the removed value or EMPTY, and cas(k, expected, new)
// answers in two words — (1, expected) on success, (0, witnessed) on
// failure (witness 0 when k is absent). cas values are 32-bit
// (spec.PackCAS packs the pair into one argument word so the operation
// fits the keyed two-word runtime contract {Kind, Key, Arg}).
//
// Persistent node layout (one bucket snapshot, nodeLines cache lines):
//
//	[0] opKind  [1] prev  [2] taken  [3] have
//	[4] key     [5] arg   [6] respA  [7] respB
//	[8] count   [9..] count × (key, value) entries
//
// Unlike the register, a node's response words (respA/respB — the
// deleted value, the cas witness) are computed from the snapshot being
// displaced and persisted with the node BEFORE the install CAS, so a
// mutator's response is durable the instant its node enters the bucket.
// The settlement that follows (mark the displaced node taken, then set
// the installer's have flag, in that order, both before the displaced
// node can be retired) exists for the *other* direction of detection: a
// displaced node's owner proves execution from its taken flag, and
// recovery's fixpoint re-runs exactly this settlement for installs a
// crash interrupted.
//
// Effectless operations — get, del of an absent key, cas that fails —
// have no node to witness; they become detectable by recording their
// response in the owner's detectability line X[i] before returning,
// exactly as the register's reads and failed cas do.
package hmap

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/ebr"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// Node field offsets.
const (
	offKind  = 0
	offPrev  = 1
	offTaken = 2
	offHave  = 3
	offKey   = 4
	offArg   = 5
	offRespA = 6
	offRespB = 7
	offCount = 8
	offEnt   = 9 // count × (key, value) pairs
)

// EntriesPerBucket bounds one bucket's population: a snapshot node holds
// at most this many pairs, and a put that would grow a full bucket
// returns ErrBucketFull. Sized so a node (9 header words + 2 words per
// entry) fills exactly nodeLines cache lines.
const (
	EntriesPerBucket = 11
	nodeWords        = offEnt + 2*EntriesPerBucket // 31, rounds to 4 lines
	nodeLines        = (nodeWords + pmem.WordsPerLine - 1) / pmem.WordsPerLine
)

// X-word encoding, mirroring internal/reg: bit 63 prep, bits 62-60 the
// operation kind, bit 59 compl (response recorded / settlement
// finished), bit 58 the effectless-outcome marker (get-EMPTY, del-EMPTY,
// failed cas); the low bits hold a mutator's prepared node address.
const (
	prepTag   = uint64(1) << 63
	kindShift = 60
	kindMask  = uint64(7) << kindShift
	complTag  = uint64(1) << 59
	missTag   = uint64(1) << 58
	tagMask   = prepTag | kindMask | complTag | missTag
)

// X-word kind values.
const (
	kGet = uint64(iota)
	kPut
	kDel
	kCAS
)

// X-line word offsets: word 0 is the tagged word, word 1 the key of a
// prepared get (mutators keep their key in the node), word 2 the
// recorded response value of a get or the witness of a failed cas — all
// on one line, so recording a response is one persist.
const (
	xWord = 0
	xKey  = 1
	xVal  = 2
)

// ErrNoNodes is returned when the snapshot-node pool is exhausted.
var ErrNoNodes = errors.New("hmap: node pool exhausted")

// ErrBucketFull is returned by a put whose bucket already holds
// EntriesPerBucket other keys.
var ErrBucketFull = errors.New("hmap: bucket full")

// Config parameterizes a detectable hash map.
type Config struct {
	// Threads is the number of worker threads (tids 0..Threads-1).
	Threads int
	// Buckets is the fixed bucket count (default 8).
	Buckets int
	// NodesPerThread sizes each thread's pre-allocated snapshot pool.
	NodesPerThread int
	// ExtraNodes adds shared spare snapshots.
	ExtraNodes int
}

// Map is a detectable recoverable fixed-bucket hash map. All exported
// methods except New, Attach, Recover, ResetVolatile and AbandonPrep are
// safe for concurrent use by distinct threads, each passing its own tid.
type Map struct {
	h    *pmem.Heap
	pool *pmem.Pool
	rec  *ebr.Collector

	rBase pmem.Addr // bucket heads, one line each
	xBase pmem.Addr // detectability lines, one per thread

	threads int
	buckets int
}

// Persistent configuration line offsets.
const (
	cfgMagic   = 0
	cfgThreads = 1
	cfgBuckets = 2
	cfgNodes   = 3
	cfgExtra   = 4
	cfgPool    = 5
)

// magicMap identifies an initialized detectable hash map's metadata.
const magicMap = 0x4453_534d // "DSSM"

// BucketOf is the map's key-to-bucket hash: a Fibonacci-style mix using
// a different multiplier and bit window than sharded.KeyShard, so shard
// placement and bucket placement stay uncorrelated when the map is
// sharded by key.
func BucketOf(key uint64, buckets int) int {
	return int(key * 0xA24BAED4963EE407 >> 32 % uint64(buckets))
}

// New allocates and initializes a detectable hash map on h, registering
// its metadata in heap root slot rootSlot. All buckets start empty (a
// zero head word).
func New(h *pmem.Heap, rootSlot int, cfg Config) (*Map, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("hmap: need at least one thread, got %d", cfg.Threads)
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 8
	}
	if cfg.NodesPerThread < 1 {
		return nil, fmt.Errorf("hmap: need at least one node per thread")
	}
	meta, err := h.Alloc((1 + cfg.Buckets + cfg.Threads) * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("hmap: metadata: %w", err)
	}
	m := &Map{
		h:       h,
		rBase:   meta + pmem.WordsPerLine,
		xBase:   meta + pmem.Addr((1+cfg.Buckets)*pmem.WordsPerLine),
		threads: cfg.Threads,
		buckets: cfg.Buckets,
	}
	m.pool, err = pmem.NewPool(h, pmem.PoolConfig{
		Threads:         cfg.Threads,
		BlocksPerThread: cfg.NodesPerThread,
		ExtraBlocks:     cfg.ExtraNodes,
		BlockWords:      nodeWords,
		Pinned:          m.pinned,
	})
	if err != nil {
		return nil, fmt.Errorf("hmap: snapshot pool: %w", err)
	}
	h.Store(meta+cfgThreads, uint64(cfg.Threads))
	h.Store(meta+cfgBuckets, uint64(cfg.Buckets))
	h.Store(meta+cfgNodes, uint64(cfg.NodesPerThread))
	h.Store(meta+cfgExtra, uint64(cfg.ExtraNodes))
	h.Store(meta+cfgPool, uint64(m.pool.Base()))
	h.Store(meta+cfgMagic, magicMap)
	h.Persist(meta)
	for b := 0; b < cfg.Buckets; b++ {
		h.Store(m.bucketAddr(b), 0)
	}
	h.PersistRange(m.rBase, cfg.Buckets*pmem.WordsPerLine)
	for i := 0; i < cfg.Threads; i++ {
		h.Store(m.xAddr(i), 0)
	}
	h.PersistRange(m.xBase, cfg.Threads*pmem.WordsPerLine)
	if err := m.initEBR(); err != nil {
		return nil, err
	}
	h.SetRoot(rootSlot, meta)
	return m, nil
}

// Attach reconstructs the handle of an existing map from heap root slot
// rootSlot. The caller must run Recover before resuming operations.
func Attach(h *pmem.Heap, rootSlot int) (*Map, error) {
	meta := h.Root(rootSlot)
	if meta == 0 {
		return nil, fmt.Errorf("hmap: root slot %d is empty", rootSlot)
	}
	if h.Load(meta+cfgMagic) != magicMap {
		return nil, fmt.Errorf("hmap: root slot %d does not hold a detectable hash map", rootSlot)
	}
	threads := int(h.Load(meta + cfgThreads))
	buckets := int(h.Load(meta + cfgBuckets))
	if threads <= 0 || threads > 1<<16 || buckets <= 0 || buckets > 1<<20 {
		return nil, fmt.Errorf("hmap: corrupt geometry (%d threads, %d buckets)", threads, buckets)
	}
	m := &Map{
		h:       h,
		rBase:   meta + pmem.WordsPerLine,
		xBase:   meta + pmem.Addr((1+buckets)*pmem.WordsPerLine),
		threads: threads,
		buckets: buckets,
	}
	var err error
	m.pool, err = pmem.AttachPool(h, pmem.Addr(h.Load(meta+cfgPool)), pmem.PoolConfig{
		Threads:         threads,
		BlocksPerThread: int(h.Load(meta + cfgNodes)),
		ExtraBlocks:     int(h.Load(meta + cfgExtra)),
		BlockWords:      nodeWords,
		Pinned:          m.pinned,
	})
	if err != nil {
		return nil, fmt.Errorf("hmap: snapshot pool: %w", err)
	}
	if err := m.initEBR(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Map) initEBR() error {
	var err error
	m.rec, err = ebr.New(m.threads, func(tid int, a pmem.Addr) {
		m.pool.Free(tid, a)
	})
	if err != nil {
		return fmt.Errorf("hmap: reclamation: %w", err)
	}
	// Reuse fence: persist every bucket head before a retired snapshot
	// becomes reusable, so a persisted head revived by a crash never
	// names a reused node (see reg.New's drain hook).
	m.rec.SetDrainHook(func(int) {
		m.h.PersistRange(m.rBase, m.buckets*pmem.WordsPerLine)
	})
	return nil
}

// Threads reports the map's thread count.
func (m *Map) Threads() int { return m.threads }

// Buckets reports the map's fixed bucket count.
func (m *Map) Buckets() int { return m.buckets }

// Heap returns the map's underlying heap.
func (m *Map) Heap() *pmem.Heap { return m.h }

// FreeNodes exposes pool occupancy for tests.
func (m *Map) FreeNodes() int { return m.pool.FreeCount() }

// Capacity exposes the pool's block count for the space-bound tests.
func (m *Map) Capacity() int { return m.pool.Capacity() }

// Quiesce drains all pending reclamation (test access).
func (m *Map) Quiesce() { m.rec.Flush() }

func (m *Map) bucketAddr(b int) pmem.Addr {
	return m.rBase + pmem.Addr(b*pmem.WordsPerLine)
}

func (m *Map) xAddr(tid int) pmem.Addr {
	return m.xBase + pmem.Addr(tid*pmem.WordsPerLine)
}

func ptrOf(x uint64) pmem.Addr { return pmem.Addr(x &^ tagMask) }

func kindOf(x uint64) uint64 { return x & kindMask >> kindShift }

// pinned vetoes recycling of any snapshot a bucket head or a
// detectability word references in either the coherent or the persisted
// view (simulator-side bookkeeping; uncharged reads, see reg.pinned).
func (m *Map) pinned(a pmem.Addr) bool {
	tracked := m.h.Mode() == pmem.Tracked
	for b := 0; b < m.buckets; b++ {
		if pmem.Addr(m.h.LoadVolatile(m.bucketAddr(b))) == a {
			return true
		}
		if tracked && pmem.Addr(m.h.PersistedLoad(m.bucketAddr(b))) == a {
			return true
		}
	}
	for i := 0; i < m.threads; i++ {
		if ptrOf(m.h.LoadVolatile(m.xAddr(i))) == a {
			return true
		}
		if tracked && ptrOf(m.h.PersistedLoad(m.xAddr(i))) == a {
			return true
		}
	}
	return false
}

func (m *Map) allocNode(tid int) (pmem.Addr, bool) {
	for attempt := 0; attempt < 128; attempt++ {
		if a, ok := m.pool.Alloc(tid); ok {
			return a, true
		}
		m.rec.Collect(tid)
		runtime.Gosched()
	}
	return 0, false
}

// entry returns the i-th (key, value) pair of snapshot node n.
func (m *Map) entry(n pmem.Addr, i int) (uint64, uint64) {
	return m.h.Load(n + offEnt + pmem.Addr(2*i)), m.h.Load(n + offEnt + pmem.Addr(2*i) + 1)
}

// lookup scans snapshot n (0 = empty bucket) for key.
func (m *Map) lookup(n pmem.Addr, key uint64) (uint64, bool) {
	if n == 0 {
		return 0, false
	}
	count := int(m.h.Load(n + offCount))
	for i := 0; i < count; i++ {
		if k, v := m.entry(n, i); k == key {
			return v, true
		}
	}
	return 0, false
}

// persistNode flushes all of node's lines and drains once.
func (m *Map) persistNode(n pmem.Addr) {
	m.h.PersistRange(n, nodeWords)
}

// reclaimPrep returns the node of a superseded prepared mutator to the
// pool when it verifiably never took effect (see reg.reclaimPrep).
//
// For a completed operation the owner's X word is the authority: the
// miss tag was written atomically with the outcome, so it says exactly
// whether the node was ever published. An installed node must NOT be
// freed here even if it is no longer current — between a displacer's
// install CAS and its settle the node is neither current nor taken,
// yet the displacer (and any snapshot builder that loaded it as cur)
// still holds a reference; reclaiming it in that window hands a live
// snapshot to the allocator. Installed nodes are retired by their
// displacer through the collector instead. The structural check is
// kept only for an incomplete prep (AbandonPrep, recovery), which runs
// with no concurrent displacers.
func (m *Map) reclaimPrep(tid int, oldX uint64) {
	if oldX&prepTag == 0 || kindOf(oldX) == kGet {
		return
	}
	node := ptrOf(oldX)
	if node == 0 {
		return
	}
	if oldX&complTag != 0 {
		if oldX&missTag != 0 {
			m.pool.Free(tid, node)
		}
		return
	}
	b := BucketOf(m.h.Load(node+offKey), m.buckets)
	if pmem.Addr(m.h.Load(m.bucketAddr(b))) != node && m.h.Load(node+offTaken) == 0 {
		m.pool.Free(tid, node)
	}
}

// PrepGet declares the detectable intent to look key up (Axiom 1).
func (m *Map) PrepGet(tid int, key uint64) {
	oldX := m.h.Load(m.xAddr(tid))
	m.h.Store(m.xAddr(tid)+xKey, key)
	m.h.Store(m.xAddr(tid), prepTag|kGet<<kindShift)
	m.h.Persist(m.xAddr(tid))
	m.reclaimPrep(tid, oldX)
}

// PrepPut declares the detectable intent to upsert key → v (Axiom 1).
func (m *Map) PrepPut(tid int, key, v uint64) error {
	return m.prepMutator(tid, kPut, key, v)
}

// PrepDelete declares the detectable intent to remove key (Axiom 1).
func (m *Map) PrepDelete(tid int, key uint64) error {
	return m.prepMutator(tid, kDel, key, 0)
}

// PrepCAS declares the detectable intent to compare-and-swap key's value
// (Axiom 1): packed carries (expected, new) via spec.PackCAS.
func (m *Map) PrepCAS(tid int, key, packed uint64) error {
	return m.prepMutator(tid, kCAS, key, packed)
}

func (m *Map) prepMutator(tid int, kind, key, arg uint64) error {
	oldX := m.h.Load(m.xAddr(tid))
	node, ok := m.allocNode(tid)
	if !ok {
		return ErrNoNodes
	}
	// Only the identity fields need persisting at prep time; the
	// snapshot body is rebuilt (and re-persisted) by every exec attempt.
	m.h.Store(node+offKind, kind)
	m.h.Store(node+offPrev, 0)
	m.h.Store(node+offTaken, 0)
	m.h.Store(node+offHave, 0)
	m.h.Store(node+offKey, key)
	m.h.Store(node+offArg, arg)
	m.h.Store(node+offRespA, 0)
	m.h.Store(node+offRespB, 0)
	m.h.Store(node+offCount, 0)
	m.h.Persist(node)
	m.h.Store(m.xAddr(tid), uint64(node)|prepTag|kind<<kindShift)
	m.h.Persist(m.xAddr(tid))
	if node != ptrOf(oldX) {
		m.reclaimPrep(tid, oldX)
	}
	return nil
}

// ExecGet performs the prepared lookup (Axiom 2), recording the
// response durably before returning.
func (m *Map) ExecGet(tid int) (uint64, bool) {
	key := m.h.Load(m.xAddr(tid) + xKey)
	m.rec.Enter(tid)
	v, present := m.lookup(pmem.Addr(m.h.Load(m.bucketAddr(BucketOf(key, m.buckets)))), key)
	m.rec.Exit(tid)
	x := m.h.Load(m.xAddr(tid))
	m.h.Store(m.xAddr(tid)+xVal, v)
	if present {
		m.h.Store(m.xAddr(tid), x|complTag)
	} else {
		m.h.Store(m.xAddr(tid), x|complTag|missTag)
	}
	m.h.Persist(m.xAddr(tid))
	return v, present
}

// ExecPut performs the prepared upsert (Axiom 2).
func (m *Map) ExecPut(tid int) error {
	_, _, err := m.execMutator(tid)
	return err
}

// ExecDelete performs the prepared removal (Axiom 2): the removed value,
// or ok false for an absent key (the EMPTY response).
func (m *Map) ExecDelete(tid int) (v uint64, ok bool, err error) {
	a, b, err := m.execMutator(tid)
	return b, a == 1, err
}

// ExecCAS performs the prepared compare-and-swap (Axiom 2): ok reports
// success and witness the value the operation observed (the expected
// value on success, 0 when the key was absent).
func (m *Map) ExecCAS(tid int) (ok bool, witness uint64, err error) {
	a, b, err := m.execMutator(tid)
	return a == 1, b, err
}

// buildSnapshot writes node's snapshot body: cur's entries transformed
// by node's own operation. It returns the response pair to pre-store
// and install true when the operation takes effect (false outcomes —
// absent del, failed cas — are recorded in X by the caller instead).
func (m *Map) buildSnapshot(node, cur pmem.Addr) (respA, respB uint64, install bool, err error) {
	kind := m.h.Load(node + offKind)
	key := m.h.Load(node + offKey)
	arg := m.h.Load(node + offArg)
	count := 0
	if cur != 0 {
		count = int(m.h.Load(cur + offCount))
	}
	out := 0
	var curVal uint64
	present := false
	for i := 0; i < count; i++ {
		k, v := m.entry(cur, i)
		if k == key {
			curVal, present = v, true
			continue
		}
		m.h.Store(node+offEnt+pmem.Addr(2*out), k)
		m.h.Store(node+offEnt+pmem.Addr(2*out)+1, v)
		out++
	}
	switch kind {
	case kPut:
		if out >= EntriesPerBucket {
			return 0, 0, false, ErrBucketFull
		}
		m.h.Store(node+offEnt+pmem.Addr(2*out), key)
		m.h.Store(node+offEnt+pmem.Addr(2*out)+1, arg)
		out++
		respA, respB = 0, 0
	case kDel:
		if !present {
			return 0, 0, false, nil
		}
		respA, respB = 1, curVal
	case kCAS:
		expected, newV := spec.UnpackCAS(arg)
		if !present {
			return 0, 0, false, nil
		}
		if curVal != expected {
			return 0, curVal, false, nil
		}
		m.h.Store(node+offEnt+pmem.Addr(2*out), key)
		m.h.Store(node+offEnt+pmem.Addr(2*out)+1, newV)
		out++
		respA, respB = 1, expected
	}
	m.h.Store(node+offCount, uint64(out))
	return respA, respB, true, nil
}

// execMutator runs the install protocol for the prepared mutator node.
// The generic response pair is (respA, respB): put (0,0) — its response
// is Ack; del (1, removed) effective or (0,0) absent; cas (1, expected)
// or (0, witness).
func (m *Map) execMutator(tid int) (respA, respB uint64, err error) {
	x := m.h.Load(m.xAddr(tid))
	if x&prepTag == 0 || x&complTag != 0 {
		return 0, 0, nil
	}
	node := ptrOf(x)
	if node == 0 {
		return 0, 0, nil
	}
	b := BucketOf(m.h.Load(node+offKey), m.buckets)
	m.rec.Enter(tid)
	defer m.rec.Exit(tid)
	for {
		cur := pmem.Addr(m.h.Load(m.bucketAddr(b)))
		respA, respB, install, err := m.buildSnapshot(node, cur)
		if err != nil {
			return 0, 0, err
		}
		if !install {
			// No effect to witness (absent del, failed cas): record the
			// response in the X line, as the register does for a failed
			// cas, and leave the node uninstalled.
			m.h.Store(m.xAddr(tid)+xVal, respB)
			m.h.Store(m.xAddr(tid), x|complTag|missTag)
			m.h.Persist(m.xAddr(tid))
			return respA, respB, nil
		}
		m.h.Store(node+offPrev, uint64(cur))
		m.h.Store(node+offRespA, respA)
		m.h.Store(node+offRespB, respB)
		m.persistNode(node)
		if m.h.CompareAndSwap(m.bucketAddr(b), uint64(cur), uint64(node)) {
			m.h.Persist(m.bucketAddr(b))
			m.settle(node, cur)
			m.h.Store(m.xAddr(tid), x|complTag)
			m.h.Persist(m.xAddr(tid))
			if cur != 0 {
				m.rec.Retire(tid, cur)
			}
			return respA, respB, nil
		}
	}
}

// settle finishes node's displacement of cur: mark cur taken, then set
// node's have flag, persisted in that order — execution of cur's owner
// becomes provable before node's settlement is declared done, and both
// before cur can ever be retired (the retire happens after settle
// returns). Recovery re-runs exactly this sequence.
func (m *Map) settle(node, cur pmem.Addr) {
	if cur != 0 && m.h.Load(cur+offTaken) == 0 {
		m.h.Store(cur+offTaken, 1)
		m.h.Persist(cur)
	}
	m.h.Store(node+offHave, 1)
	m.h.Persist(node)
}

// Get is the non-detectable lookup (Axiom 4).
func (m *Map) Get(tid int, key uint64) (uint64, bool) {
	m.rec.Enter(tid)
	defer m.rec.Exit(tid)
	return m.lookup(pmem.Addr(m.h.Load(m.bucketAddr(BucketOf(key, m.buckets)))), key)
}

// Put is the non-detectable upsert (Axiom 4).
func (m *Map) Put(tid int, key, v uint64) error {
	_, _, err := m.invoke(tid, kPut, key, v)
	return err
}

// Delete is the non-detectable removal (Axiom 4).
func (m *Map) Delete(tid int, key uint64) (v uint64, ok bool, err error) {
	a, b, err := m.invoke(tid, kDel, key, 0)
	return b, a == 1, err
}

// CAS is the non-detectable compare-and-swap (Axiom 4).
func (m *Map) CAS(tid int, key, packed uint64) (ok bool, witness uint64, err error) {
	a, b, err := m.invoke(tid, kCAS, key, packed)
	return a == 1, b, err
}

// invoke installs a snapshot without touching X[tid]. It runs the same
// settlement protocol as a detectable exec — the taken flags it sets are
// what other threads' detectable resolves read.
func (m *Map) invoke(tid int, kind, key, arg uint64) (respA, respB uint64, err error) {
	node, ok := m.allocNode(tid)
	if !ok {
		return 0, 0, ErrNoNodes
	}
	m.h.Store(node+offKind, kind)
	m.h.Store(node+offTaken, 0)
	m.h.Store(node+offHave, 0)
	m.h.Store(node+offKey, key)
	m.h.Store(node+offArg, arg)
	b := BucketOf(key, m.buckets)
	m.rec.Enter(tid)
	defer m.rec.Exit(tid)
	for {
		cur := pmem.Addr(m.h.Load(m.bucketAddr(b)))
		respA, respB, install, err := m.buildSnapshot(node, cur)
		if err != nil {
			m.pool.Free(tid, node)
			return 0, 0, err
		}
		if !install {
			m.pool.Free(tid, node)
			return respA, respB, nil
		}
		m.h.Store(node+offPrev, uint64(cur))
		m.h.Store(node+offRespA, respA)
		m.h.Store(node+offRespB, respB)
		m.persistNode(node)
		if m.h.CompareAndSwap(m.bucketAddr(b), uint64(cur), uint64(node)) {
			m.h.Persist(m.bucketAddr(b))
			m.settle(node, cur)
			if cur != 0 {
				m.rec.Retire(tid, cur)
			}
			return respA, respB, nil
		}
	}
}

// OpName identifies a map operation in a Resolution.
type OpName int

const (
	// OpNone means no operation was prepared.
	OpNone OpName = iota + 1
	// OpGet is a prepared lookup.
	OpGet
	// OpPut is a prepared upsert.
	OpPut
	// OpDelete is a prepared removal.
	OpDelete
	// OpCAS is a prepared compare-and-swap.
	OpCAS
)

// String returns the operation name.
func (o OpName) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "del"
	case OpCAS:
		return "cas"
	default:
		return fmt.Sprintf("OpName(%d)", int(o))
	}
}

// Resolution is the map's decoded (A[p], R[p]) pair.
type Resolution struct {
	// Op is the prepared operation, or OpNone.
	Op OpName
	// Key is the prepared operation's key.
	Key uint64
	// Arg is the put value, or the packed (expected, new) pair of a cas.
	Arg uint64
	// Executed reports whether the operation took effect (R[p] ≠ ⊥).
	Executed bool
	// Present reports, for an executed get or del, whether the key was
	// found (false is the EMPTY response).
	Present bool
	// Val is the response's first word: the value a get returned, the
	// value a del removed, or the success bit of a cas.
	Val uint64
	// Val2 is the response's second word: the value a cas witnessed.
	Val2 uint64
}

// Resolve reports the most recently prepared operation and its outcome
// (Axiom 3). Total and idempotent.
func (m *Map) Resolve(tid int) Resolution {
	x := m.h.Load(m.xAddr(tid))
	if x&prepTag == 0 {
		return Resolution{Op: OpNone}
	}
	if kindOf(x) == kGet {
		res := Resolution{Op: OpGet, Key: m.h.Load(m.xAddr(tid) + xKey)}
		if x&complTag != 0 {
			res.Executed = true
			res.Present = x&missTag == 0
			if res.Present {
				res.Val = m.h.Load(m.xAddr(tid) + xVal)
			}
		}
		return res
	}
	node := ptrOf(x)
	if node == 0 {
		return Resolution{Op: OpNone}
	}
	res := Resolution{
		Key: m.h.Load(node + offKey),
		Arg: m.h.Load(node + offArg),
	}
	switch kindOf(x) {
	case kPut:
		res.Op = OpPut
		res.Executed = m.installed(x, node)
		res.Present = res.Executed
	case kDel:
		res.Op = OpDelete
		switch {
		case x&missTag != 0:
			res.Executed = true
		case m.installed(x, node):
			res.Executed, res.Present = true, true
			res.Val = m.h.Load(node + offRespB)
		}
	default: // kCAS
		res.Op = OpCAS
		switch {
		case x&missTag != 0:
			res.Executed = true
			res.Val = 0
			res.Val2 = m.h.Load(m.xAddr(tid) + xVal)
		case m.installed(x, node):
			res.Executed = true
			res.Val = 1
			res.Val2 = m.h.Load(node + offRespB)
		}
	}
	return res
}

// installed reports whether a mutator's node verifiably entered its
// bucket: the owner finished (compl), or the node is the bucket's
// current snapshot, or a displacer marked it taken.
func (m *Map) installed(x uint64, node pmem.Addr) bool {
	if x&complTag != 0 && x&missTag == 0 {
		return true
	}
	b := BucketOf(m.h.Load(node+offKey), m.buckets)
	if pmem.Addr(m.h.Load(m.bucketAddr(b))) == node {
		return true
	}
	return m.h.Load(node+offTaken) != 0
}

// Resp converts the resolution to the spec package's resolve response
// for conformance checking against D⟨map⟩.
func (r Resolution) Resp() spec.Resp {
	var op spec.Op
	switch r.Op {
	case OpGet:
		op = spec.Get(r.Key)
	case OpPut:
		op = spec.Put(r.Key, r.Arg)
	case OpDelete:
		op = spec.Del(r.Key)
	case OpCAS:
		exp, newV := spec.UnpackCAS(r.Arg)
		op = spec.MCAS(r.Key, exp, newV)
	default:
		return spec.PairResp(false, spec.Op{}, spec.BottomResp())
	}
	inner := spec.BottomResp()
	if r.Executed {
		switch r.Op {
		case OpGet, OpDelete:
			if r.Present {
				inner = spec.ValResp(r.Val)
			} else {
				inner = spec.EmptyResp()
			}
		case OpPut:
			inner = spec.AckResp()
		case OpCAS:
			inner = spec.ValResp2(r.Val, r.Val2)
		}
	}
	return spec.PairResp(true, op, inner)
}

// AbandonPrep withdraws tid's currently prepared-but-unexecuted
// operation, clearing X[tid] (persisted) and returning an uninstalled
// node to the pool (see core.Queue.AbandonPrep for the contract).
func (m *Map) AbandonPrep(tid int) {
	x := m.h.Load(m.xAddr(tid))
	if x == 0 {
		return
	}
	m.h.Store(m.xAddr(tid), 0)
	m.h.Persist(m.xAddr(tid))
	m.reclaimPrep(tid, x)
}

// Recover is the map's centralized recovery: a fixpoint over the
// detectability words that completes every interrupted settlement, then
// a pool sweep. Contract as in core.Queue.Recover: single-threaded,
// after Heap.Crash, before any thread resumes; idempotent.
//
// A node with an unsettled displacement below it is always referenced
// by its owner's X (the owner overwrites X only after exec returns, and
// exec returns only after settling), so walking the X entries reaches
// every displacement recovery must complete. Settling one node can
// prove another's execution (its taken flag appears), hence the
// fixpoint.
func (m *Map) Recover() {
	for changed := true; changed; {
		changed = false
		for i := 0; i < m.threads; i++ {
			x := m.h.Load(m.xAddr(i))
			if x&prepTag == 0 || kindOf(x) == kGet || x&(complTag|missTag) != 0 {
				continue
			}
			node := ptrOf(x)
			if node == 0 || !m.installed(x, node) {
				continue
			}
			if m.h.Load(node+offHave) != 0 {
				continue
			}
			prev := pmem.Addr(m.h.Load(node + offPrev))
			if prev != 0 && m.h.Load(prev+offTaken) == 0 {
				// The displacer crashed mid-settlement, so prev was never
				// retired: re-run the settlement.
				m.h.Store(prev+offTaken, 1)
				m.h.Persist(prev)
				changed = true
			}
			m.h.Store(node+offHave, 1)
			m.h.Persist(node)
		}
	}

	m.rec.Reset()
	live := map[pmem.Addr]bool{}
	for b := 0; b < m.buckets; b++ {
		if p := pmem.Addr(m.h.Load(m.bucketAddr(b))); p != 0 {
			live[p] = true
		}
	}
	for i := 0; i < m.threads; i++ {
		if p := ptrOf(m.h.Load(m.xAddr(i))); p != 0 {
			live[p] = true
		}
	}
	m.pool.Sweep(func(a pmem.Addr) bool { return live[a] })
}

// ResetVolatile re-initializes the map's volatile companions (EBR)
// without touching persistent state (see core.Queue.ResetVolatile).
func (m *Map) ResetVolatile() {
	m.rec.Reset()
}
