package procharness

import (
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/livemon"
	"repro/internal/obs"
	"repro/internal/shm"
)

// TestMain makes the test binary role-hosting: when the supervisor
// under test re-execs it with DSSPROC_ROLE set, MaybeRole takes over
// and never returns. Plain `go test` runs fall through to the tests.
func TestMain(m *testing.M) {
	MaybeRole()
	os.Exit(m.Run())
}

// TestScheduleDeterministic: the fault schedule is a pure function of
// (seed, config) — same inputs, same directives; different seeds,
// different kill points.
func TestScheduleDeterministic(t *testing.T) {
	cfg := StormConfig{
		Seed: 7, Servers: 2, ClientsPerServer: 3, OpsPerClient: 100,
		KillsPerServer: 4, RecoveryKillsPerServer: 1, Blackouts: 1, Wedges: 2,
	}.withDefaults()
	a, b := buildSchedule(cfg), buildSchedule(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if want := 2*(4+1) + 1 + 2; len(a) != want {
		t.Fatalf("schedule has %d directives, want %d", len(a), want)
	}
	for i := 1; i < len(a); i++ {
		if a[i].trigger < a[i-1].trigger {
			t.Fatalf("schedule not sorted by trigger at %d", i)
		}
	}
	cfg.Seed = 8
	if reflect.DeepEqual(a, buildSchedule(cfg)) {
		t.Fatal("different seeds produced identical schedules")
	}
	if got, want := cfg.ExpectedKills(), 2*(4+2*1+1)+2; got != want {
		t.Fatalf("ExpectedKills = %d, want %d", got, want)
	}
}

// TestVerifyServerCatchesLoss: the history verifier flags a value that
// was inserted but never surfaced again — the loss a broken recovery
// would produce.
func TestVerifyServerCatchesLoss(t *testing.T) {
	hists := []clientHistory{{
		Schema:   historySchema,
		GlobalID: 0,
		Ops: []histOp{
			{K: "i", V: 0x1_00000001, R: "a", Inv: 1, Ret: 2},
			{K: "i", V: 0x1_00000002, R: "a", Inv: 3, Ret: 4},
			{K: "r", R: "v", RV: 0x1_00000001, Inv: 5, Ret: 6},
		},
	}, {
		Schema:   historySchema,
		GlobalID: 1,
		Drain:    true,
		Ops:      []histOp{{K: "r", R: "e", Inv: 7, Ret: 8}},
	}}
	enq, deq, bad := verifyServer("queue", 0, hists)
	if enq != 2 || deq != 1 {
		t.Fatalf("conservation totals %d/%d, want 2/1", enq, deq)
	}
	if len(bad) == 0 {
		t.Fatal("lost value not reported")
	}

	// Removing the lost value heals the history.
	hists[1].Ops = append([]histOp{{K: "r", R: "v", RV: 0x1_00000002, Inv: 7, Ret: 8}},
		histOp{K: "r", R: "e", Inv: 9, Ret: 10})
	enq, deq, bad = verifyServer("queue", 0, hists)
	if enq != 2 || deq != 2 || len(bad) != 0 {
		t.Fatalf("healed history still bad: %d/%d %v", enq, deq, bad)
	}
}

// TestVerifyServerCatchesReorder: FIFO violations survive the merge —
// a queue that hands values back in the wrong order is caught even
// though conservation holds.
func TestVerifyServerCatchesReorder(t *testing.T) {
	hists := []clientHistory{{
		Schema:   historySchema,
		GlobalID: 0,
		Ops: []histOp{
			{K: "i", V: 0x1_00000001, R: "a", Inv: 1, Ret: 2},
			{K: "i", V: 0x1_00000002, R: "a", Inv: 3, Ret: 4}, // strictly after the first
			{K: "r", R: "v", RV: 0x1_00000002, Inv: 5, Ret: 6},
			{K: "r", R: "v", RV: 0x1_00000001, Inv: 7, Ret: 8},
		},
	}, {
		Schema:   historySchema,
		GlobalID: 1,
		Drain:    true,
		Ops:      []histOp{{K: "r", R: "e", Inv: 9, Ret: 10}},
	}}
	if _, _, bad := verifyServer("queue", 0, hists); len(bad) == 0 {
		t.Fatal("FIFO reorder not reported")
	}
	// The same history is a perfectly legal stack.
	if _, _, bad := verifyServer("stack", 0, hists); len(bad) != 0 {
		t.Fatalf("LIFO order misreported: %v", bad)
	}
}

// TestSmallStormEndToEnd runs a real multi-process storm: one server,
// two client processes, and every fault kind once — a direct kill, a
// kill landed during recovery, a wedge (hang detector), and a blackout.
// The report must be violation-free with every invariant intact.
func TestSmallStormEndToEnd(t *testing.T) {
	if !shm.Supported() {
		t.Skip("shared-memory segments unsupported on this platform")
	}
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	rep, side, err := RunStorm(StormConfig{
		Seed:                   3,
		Servers:                1,
		ClientsPerServer:       2,
		OpsPerClient:           30,
		KillsPerServer:         1,
		RecoveryKillsPerServer: 1,
		Blackouts:              1,
		Wedges:                 1,
		RecoveryHoldMS:         300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("storm reported violations:\n%v", rep.Violations)
	}
	wantKills := 1 + 2 + 1 + 1 // kill + rkill(2) + blackout + wedge
	if rep.Kills != wantKills {
		t.Fatalf("kills = %d, want %d", rep.Kills, wantKills)
	}
	if rep.KillsDuringRecovery != 1 || rep.Blackouts != 1 || rep.WedgeKills != 1 {
		t.Fatalf("fault breakdown %d/%d/%d, want 1/1/1",
			rep.KillsDuringRecovery, rep.Blackouts, rep.WedgeKills)
	}
	if rep.DirtyAttaches != wantKills {
		t.Fatalf("dirty attaches = %d, want %d (one per kill)", rep.DirtyAttaches, wantKills)
	}
	if len(rep.FinalGenerations) != 1 || rep.FinalGenerations[0] != uint64(1+wantKills) {
		t.Fatalf("final generations %v, want [%d]", rep.FinalGenerations, 1+wantKills)
	}
	if rep.CleanShutdowns != 1 {
		t.Fatalf("clean shutdowns = %d, want 1", rep.CleanShutdowns)
	}
	if rep.Ops != 2*30 {
		t.Fatalf("ops = %d, want 60", rep.Ops)
	}
	if rep.ValuesEnqueued != 30 || rep.ValuesDequeued != 30 {
		t.Fatalf("conservation %d/%d, want 30/30", rep.ValuesEnqueued, rep.ValuesDequeued)
	}
	// The clients must have actually observed the outages: every kill is
	// a generation change some client survived.
	if side.GenChanges == 0 {
		t.Fatal("no client observed a generation change across five kills")
	}
	if len(side.Events) == 0 {
		t.Fatal("timeline empty")
	}
}

// TestStormLiveMonitor attaches a read-only livemon.Monitor to a
// storm's working directory *while the storm runs* and proves the live
// telemetry plane end to end: generation bumps and recovery windows
// observed from outside, telemetry frames advancing across SIGKILLs,
// SLO verdicts walked, and a Prometheus exposition that validates —
// all without perturbing the deployment (the storm's own invariants
// still hold).
func TestStormLiveMonitor(t *testing.T) {
	if !shm.Supported() {
		t.Skip("shared-memory segments unsupported on this platform")
	}
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	type result struct {
		rep  StormReport
		side StormSide
		err  error
	}
	done := make(chan result, 1)
	go func() {
		rep, side, err := RunStorm(StormConfig{
			Seed:                   11,
			Servers:                1,
			ClientsPerServer:       2,
			OpsPerClient:           40,
			KillsPerServer:         1,
			RecoveryKillsPerServer: 1,
			RecoveryHoldMS:         300,
			RecoverySLOMS:          100, // the 300ms hold guarantees an overrun
			Dir:                    dir,
			KeepDir:                true,
		})
		done <- result{rep, side, err}
	}()

	// Attach once the supervisor has created the segment files.
	var mon *livemon.Monitor
	cfg := livemon.Config{SLO: obs.SLOConfig{RecoveryMaxNS: 100e6, StallNS: 400e6}}
	for deadline := time.Now().Add(time.Minute); mon == nil; {
		if time.Now().After(deadline) {
			t.Fatal("segment files never appeared")
		}
		if m, err := livemon.Open(dir, cfg); err == nil {
			mon = m
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	defer mon.Close()

	var maxGen, maxFrames, recoveries uint64
	sawRecoveryWindow := false
	for {
		select {
		case res := <-done:
			if res.err != nil {
				t.Fatal(res.err)
			}
			if !res.rep.OK() {
				t.Fatalf("storm reported violations:\n%v", res.rep.Violations)
			}

			// Live observations made while the storm ran.
			if maxGen < 2 {
				t.Fatalf("monitor never saw a generation bump (max gen %d, final %v)",
					maxGen, res.rep.FinalGenerations)
			}
			if !sawRecoveryWindow && recoveries == 0 {
				t.Fatal("monitor never observed a recovery window")
			}
			if maxFrames == 0 {
				t.Fatal("no telemetry frame was ever published")
			}

			// The supervisor's own trackers agree and recorded the walk.
			if len(res.side.SLO) != 1 || res.side.SLO[0].Recoveries == 0 {
				t.Fatalf("supervisor SLO summary: %+v", res.side.SLO)
			}
			if res.side.SLO[0].RecoveryOverruns == 0 {
				t.Fatalf("held recovery never overran the 100ms SLO: %+v", res.side.SLO)
			}
			kinds := map[string]bool{}
			for _, ev := range res.side.Events {
				kinds[ev.Kind] = true
			}
			for _, want := range []string{"slo-healthy", "slo-violating", "slo-stopped"} {
				if !kinds[want] {
					t.Fatalf("side timeline missing %q (kinds: %v)", want, kinds)
				}
			}

			// One final passive sample: cumulative percentiles from the
			// merged telemetry, and a valid Prometheus exposition.
			st := mon.Sample()
			if len(st.Cumulative) == 0 {
				t.Fatal("no cumulative telemetry after a full storm")
			}
			if len(st.Timeline) == 0 {
				t.Fatal("monitor timeline empty after a full storm")
			}
			prom := livemon.RenderProm(st)
			if probs := livemon.ValidateProm(prom); len(probs) > 0 {
				t.Fatalf("exposition invalid: %v", probs)
			}
			if !strings.Contains(prom, "dss_phase_duration_bucket{") {
				t.Fatal("exposition missing phase histograms")
			}
			if !strings.Contains(livemon.RenderTable(st), "timeline") {
				t.Fatal("table missing timeline tail")
			}
			return
		default:
		}
		st := mon.Sample()
		for _, sv := range st.Servers {
			if sv.Gen > maxGen {
				maxGen = sv.Gen
			}
			if sv.TelemetryFrames > maxFrames {
				maxFrames = sv.TelemetryFrames
			}
			if sv.Recoveries > recoveries {
				recoveries = sv.Recoveries
			}
			if sv.State == "recovering" || sv.Verdict == "recovering" {
				sawRecoveryWindow = true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
}
