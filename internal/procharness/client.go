package procharness

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/dss"
	"repro/internal/mp"
	"repro/internal/obs"
	"repro/internal/shm"
	"repro/internal/spec"
)

// historySchema versions the per-client history file the supervisor
// merges and checks.
const historySchema = "dss-proc-history/1"

// histOp is one completed operation as the client observed it: the
// operation, its response, and the [Inv, Ret] interval on the
// segment's shared ticket clock — real-time order that is valid across
// every process attached to the segment.
type histOp struct {
	// K is "i" (insert) or "r" (remove).
	K string `json:"k"`
	// V is the inserted value (K == "i").
	V uint64 `json:"v,omitempty"`
	// R is the response: "a" (ack), "v" (value), "e" (empty).
	R string `json:"r"`
	// RV is the removed value (R == "v").
	RV  uint64 `json:"rv,omitempty"`
	Inv int64  `json:"inv"`
	Ret int64  `json:"ret"`
}

// clientHistory is the whole history file.
type clientHistory struct {
	Schema   string        `json:"schema"`
	GlobalID int           `json:"global_id"`
	Drain    bool          `json:"drain,omitempty"`
	Ops      []histOp      `json:"ops"`
	Stats    mp.RetryStats `json:"stats"`
	// FinalGen is the last server generation this client observed —
	// direct evidence of how many server deaths it rode through.
	FinalGen uint64 `json:"final_gen"`
}

// ClientMain is the body of a client process: run the alternating
// insert/remove workload (or the drain role) against the server's
// rings through the full production retry client, recording every
// completed operation with shared-clock intervals. The client never
// sees the server's death except as ambiguous errors — the
// resolve-before-retry discipline is what keeps its history
// exactly-once while SIGKILLs land next door.
func ClientMain(cfg ClientConfig) error {
	typ, err := typeByName(cfg.Object)
	if err != nil {
		return err
	}
	seg, err := shm.OpenSeg(cfg.SegPath)
	if err != nil {
		return err
	}
	defer seg.Close()
	cst := seg.Client(cfg.ID)
	cst.SetPID(os.Getpid())

	conn := shm.NewClientConn(seg, cfg.ID, typ)
	if cfg.TimeoutMS > 0 {
		conn.Timeout = time.Duration(cfg.TimeoutMS) * time.Millisecond
	}
	attempt := 2 * time.Second
	if cfg.AttemptTimeoutMS > 0 {
		attempt = time.Duration(cfg.AttemptTimeoutMS) * time.Millisecond
	}
	backoffMax := 20 * time.Millisecond
	if cfg.BackoffMaxMS > 0 {
		backoffMax = time.Duration(cfg.BackoffMaxMS) * time.Millisecond
	}
	sink := obs.NewSink(obs.Config{})
	telem := newTelemetry(seg, seg.ClientTelemetry(cfg.ID), sink)
	rc := mp.NewRetryClient(conn, cfg.ID, mp.RetryPolicy{
		// The storm's downtime windows are bounded by the supervisor's
		// restart backoff, so a generous attempt budget always outlasts
		// them; a wedged run fails by timeout higher up, not silently.
		MaxAttempts:    1 << 20,
		BackoffBase:    200 * time.Microsecond,
		BackoffMax:     backoffMax,
		AttemptTimeout: attempt,
		Seed:           cfg.Seed,
	})
	rc.SetObs(sink)
	rc.SetOpKind(opKindFor(typ))

	insert := typ.SpecOp(dss.Op{Kind: dss.Insert})
	remove := typ.SpecOp(dss.Op{Kind: dss.Remove})

	do := func(op spec.Op) (histOp, error) {
		rec := histOp{K: "r"}
		if op.Sym == insert.Sym {
			rec.K, rec.V = "i", op.Arg
		}
		rec.Inv = seg.Ticket()
		resp, err := rc.Do(op)
		rec.Ret = seg.Ticket()
		if err != nil {
			return rec, fmt.Errorf("client %d op %v: %w", cfg.GlobalID, op, err)
		}
		switch resp.Kind {
		case spec.Ack:
			rec.R = "a"
		case spec.Val:
			rec.R, rec.RV = "v", resp.V
		case spec.Empty:
			rec.R = "e"
		default:
			return rec, fmt.Errorf("client %d op %v: unexpected response %v", cfg.GlobalID, op, resp)
		}
		return rec, nil
	}

	hist := clientHistory{Schema: historySchema, GlobalID: cfg.GlobalID, Drain: cfg.Drain}
	if cfg.Drain {
		// Drain role: remove until EMPTY. Together with "every workload
		// client finished first", the EMPTY response closes the history —
		// any value still unaccounted for is a real loss.
		max := cfg.MaxDrain
		if max <= 0 {
			max = 1 << 20
		}
		drained := false
		for n := 0; n < max; n++ {
			rec, err := do(typ.SpecOp(dss.Op{Kind: dss.Remove}))
			if err != nil {
				return err
			}
			hist.Ops = append(hist.Ops, rec)
			cst.SetOps(uint64(len(hist.Ops)))
			cst.Beat()
			telem.publish(8 * time.Millisecond)
			if rec.R == "e" {
				drained = true
				break
			}
		}
		if !drained {
			return fmt.Errorf("drain client %d: no EMPTY after %d removes", cfg.GlobalID, max)
		}
	} else {
		for i := 0; i < cfg.Ops; i++ {
			op := remove
			if i%2 == 0 {
				// Values are globally unique: high half identifies the
				// client, low half the op index (1-based so value 0 never
				// occurs).
				op = insert
				op.Arg = uint64(cfg.GlobalID+1)<<32 | uint64(i+1)
			}
			rec, err := do(op)
			if err != nil {
				return err
			}
			hist.Ops = append(hist.Ops, rec)
			cst.SetOps(uint64(i + 1))
			cst.Beat()
			telem.publish(8 * time.Millisecond)
		}
	}
	hist.Stats = rc.Stats()
	hist.FinalGen = rc.Gen()

	raw, err := json.Marshal(hist)
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.HistoryPath, raw, 0o644); err != nil {
		return err
	}
	if cfg.ObsPath != "" {
		exp, err := json.MarshalIndent(sink.Snapshot().Export("ns"), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.ObsPath, exp, 0o644); err != nil {
			return err
		}
	}
	telem.publish(0)
	cst.SetDone()
	return nil
}
