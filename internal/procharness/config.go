// Package procharness turns the crash-storm soak into a true
// multi-process deployment: a supervisor that lays out one shared-memory
// segment and one heap file per server, spawns real server and client
// OS processes, delivers SIGKILL on a seeded schedule (including kills
// landed inside recovery windows and whole-cluster blackouts), restarts
// servers with capped exponential backoff, detects hung servers by
// heartbeat stall, and — after draining the survivors — verifies the
// merged client-observed history with the same polynomial checkers the
// in-process soaks use.
//
// The processes are role re-executions of the host binary: the
// supervisor execs itself (or any binary whose main calls MaybeRole
// first) with DSSPROC_ROLE and a JSON DSSPROC_CONFIG in the
// environment. That lets cmd/dssproc, cmd/dsssoak and the package's own
// test binary host all three roles without building anything at run
// time.
//
// Everything the paper's detectability story promises is exercised for
// real here: the server's volatile state (reply cache, generation
// counter, dispatch hints) dies with the process; the heap file is the
// only survivor; Attach + Recover rebuild the object against a truly
// cold image; and the clients' resolve-before-retry discipline carries
// every in-flight operation across the kill exactly once.
package procharness

import (
	"fmt"

	"repro/internal/dss"
)

// ServerConfig tells a server process what to serve.
type ServerConfig struct {
	// SegPath is the shared-memory segment file (created by the
	// supervisor); HeapPath is the pmem heap file (created by the first
	// server generation, re-attached by every later one).
	SegPath  string `json:"seg"`
	HeapPath string `json:"heap"`
	// Object is the hosted dss.Type: "queue" or "stack".
	Object string `json:"object"`
	// Shards is the sharded front's width. The storm uses 1 so the
	// strict FIFO/LIFO checkers apply; wider fronts are globally
	// k-relaxed.
	Shards int `json:"shards"`
	// Clients is the number of ring pairs / thread identities (the
	// workload clients plus the drain client).
	Clients int `json:"clients"`
	// OpsPerClient sizes the node pools.
	OpsPerClient int `json:"ops_per_client"`
	// Gen is the generation this incarnation serves: 1 + the number of
	// times the supervisor has seen this server die. Monotonic across
	// restarts, which is what makes the generation fence sound without
	// persisting the counter.
	Gen uint64 `json:"gen"`
	// RecoveryHoldMS stretches the recovery window (state Recovering)
	// before the recovery procedure runs, so the supervisor's seeded
	// mid-recovery kills reliably land inside it.
	RecoveryHoldMS int `json:"recovery_hold_ms"`
	// HeapWords overrides the computed heap size (0 = derive).
	HeapWords int `json:"heap_words,omitempty"`
}

// heapWords derives a comfortably-sized arena for the configured
// workload: pool nodes for every insert alive at once plus metadata.
func (c ServerConfig) heapWords() int {
	if c.HeapWords > 0 {
		return c.HeapWords
	}
	shards := c.Shards
	if shards < 1 {
		shards = 1
	}
	return 1<<15 + 4*8*shards*(c.Clients*(c.OpsPerClient+32)+128)
}

// ClientConfig tells a client process what workload to run.
type ClientConfig struct {
	SegPath string `json:"seg"`
	Object  string `json:"object"`
	// ID is the ring pair / thread identity within the segment;
	// GlobalID is unique across the whole storm and forms the high half
	// of every value this client inserts, making values globally
	// distinct.
	ID       int `json:"id"`
	GlobalID int `json:"global_id"`
	// Ops is the alternating insert/remove workload length (even).
	Ops int `json:"ops"`
	// Drain switches to the drain role: remove until EMPTY (at most
	// MaxDrain removes), closing the history so conservation is
	// checkable.
	Drain    bool `json:"drain,omitempty"`
	MaxDrain int  `json:"max_drain,omitempty"`
	// HistoryPath receives the client's observed history (JSON);
	// ObsPath, when set, receives the client's dss-obs/1 metrics export.
	HistoryPath string `json:"history"`
	ObsPath     string `json:"obs,omitempty"`
	// Seed drives the retry jitter.
	Seed int64 `json:"seed"`
	// TimeoutMS bounds one ring round trip; AttemptTimeoutMS is the
	// retry client's per-attempt hang guard; BackoffMaxMS caps the retry
	// backoff. Zero selects defaults (150 / 2000 / 20).
	TimeoutMS        int `json:"timeout_ms,omitempty"`
	AttemptTimeoutMS int `json:"attempt_timeout_ms,omitempty"`
	BackoffMaxMS     int `json:"backoff_max_ms,omitempty"`
}

// typeByName resolves the two wire-servable container types.
func typeByName(name string) (dss.Type, error) {
	switch name {
	case "queue", "":
		return dss.QueueType, nil
	case "stack":
		return dss.StackType, nil
	default:
		return dss.Type{}, fmt.Errorf("procharness: unknown object type %q (want queue or stack)", name)
	}
}
