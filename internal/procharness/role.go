//go:build linux

package procharness

import (
	"encoding/json"
	"fmt"
	"os"
)

// The supervisor re-execs the hosting binary with these environment
// variables; MaybeRole detects them and takes over the process.
const (
	roleEnv   = "DSSPROC_ROLE"
	configEnv = "DSSPROC_CONFIG"

	roleServer = "server"
	roleClient = "client"
)

// MaybeRole checks whether this process was spawned by a storm
// supervisor as a server or client role and, if so, runs the role and
// exits the process (status 0 on success, 1 with a diagnostic on
// stderr otherwise). It returns (without doing anything) only when the
// process is not a role re-execution; binaries that may host roles call
// it first thing in main (and test binaries in TestMain).
func MaybeRole() {
	role := os.Getenv(roleEnv)
	if role == "" {
		return
	}
	raw := os.Getenv(configEnv)
	var err error
	switch role {
	case roleServer:
		var cfg ServerConfig
		if err = json.Unmarshal([]byte(raw), &cfg); err == nil {
			err = ServerMain(cfg)
		}
	case roleClient:
		var cfg ClientConfig
		if err = json.Unmarshal([]byte(raw), &cfg); err == nil {
			err = ClientMain(cfg)
		}
	default:
		err = fmt.Errorf("unknown role %q", role)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dssproc %s: %v\n", role, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// roleEnviron builds the environment for a role re-execution.
func roleEnviron(role string, cfg any) ([]string, error) {
	raw, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	env := append(os.Environ(),
		roleEnv+"="+role,
		configEnv+"="+string(raw))
	return env, nil
}
