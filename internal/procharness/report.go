package procharness

import (
	"fmt"
	"strings"
)

// ReportSchema versions the storm report. Every field is derived from
// the configuration and from exactly-once invariants (each value
// inserted once, removed once; each kill observed as one dirty attach;
// each restart advancing the generation by one), so a passing run is
// byte-identical across repeats — wall-clock measurements live in the
// StormSide, which is never committed.
const ReportSchema = "dss-procs/1"

// StormReport is the deterministic outcome of one multi-process crash
// storm.
type StormReport struct {
	Schema string `json:"schema"`
	Object string `json:"object"`
	Seed   int64  `json:"seed"`

	Servers          int `json:"servers"`
	ClientsPerServer int `json:"clients_per_server"`
	Clients          int `json:"clients"`
	OpsPerClient     int `json:"ops_per_client"`
	ShardsPerServer  int `json:"shards_per_server"`
	RingSlots        int `json:"ring_slots"`

	// Ops is the number of completed workload operations (drain removes
	// excluded): Clients * OpsPerClient when every client finished.
	Ops uint64 `json:"ops"`

	// Kills counts every SIGKILL delivered, including the blackout and
	// wedge kills; KillsPerServer breaks it down by victim.
	Kills          int   `json:"kills"`
	KillsPerServer []int `json:"kills_per_server"`
	// KillsDuringRecovery counts kills the supervisor landed while the
	// victim's status page showed StateRecovering — the recovery
	// procedure itself was interrupted and re-run by the successor.
	KillsDuringRecovery int `json:"kills_during_recovery"`
	// Blackouts counts whole-cluster outages (every server killed while
	// down simultaneously).
	Blackouts int `json:"blackouts"`
	// WedgeKills counts servers killed by the heartbeat hang detector
	// after being wedged (alive but silent), as opposed to the scheduled
	// direct kills.
	WedgeKills int `json:"wedge_kills"`

	// ValuesEnqueued / ValuesDequeued are the conservation totals across
	// all servers; they are equal in a passing run and the drain proves
	// every structure ended empty.
	ValuesEnqueued int `json:"values_enqueued"`
	ValuesDequeued int `json:"values_dequeued"`

	// DirtyAttaches counts heap reopens that found the dirty-shutdown
	// marker set. Exactly one per kill: a SIGKILL never runs the clean
	// close path, and nothing else dies.
	DirtyAttaches int `json:"dirty_attaches"`
	// FinalGenerations[i] is server i's last served generation —
	// 1 + KillsPerServer[i] when the generation line is unbroken.
	FinalGenerations []uint64 `json:"final_generations"`
	// CleanShutdowns counts servers that exited 0 on SIGTERM with their
	// heap cleanly closed (all of them, in a passing run).
	CleanShutdowns int `json:"clean_shutdowns"`

	// Violations is every checker failure and broken invariant; empty
	// means the storm passed.
	Violations []string `json:"violations"`
}

// OK reports whether the storm passed.
func (r StormReport) OK() bool { return len(r.Violations) == 0 }

// String renders a one-line summary.
func (r StormReport) String() string {
	verdict := "OK"
	if !r.OK() {
		verdict = fmt.Sprintf("%d VIOLATIONS", len(r.Violations))
	}
	return fmt.Sprintf(
		"procs %s seed=%d servers=%d clients=%d ops=%d kills=%d (recovery=%d blackouts=%d wedge=%d) dirty=%d gens=%s values=%d/%d: %s",
		r.Object, r.Seed, r.Servers, r.Clients, r.Ops,
		r.Kills, r.KillsDuringRecovery, r.Blackouts, r.WedgeKills,
		r.DirtyAttaches, fmtGens(r.FinalGenerations),
		r.ValuesEnqueued, r.ValuesDequeued, verdict)
}

func fmtGens(gens []uint64) string {
	parts := make([]string, len(gens))
	for i, g := range gens {
		parts[i] = fmt.Sprintf("%d", g)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// TimelineSchema versions the non-deterministic side record: the
// supervisor's event log with wall-clock offsets, plus client retry
// aggregates. Useful for debugging a failing storm; never committed.
const TimelineSchema = "dss-proc-timeline/1"

// StormEvent is one supervisor-observed lifecycle event.
type StormEvent struct {
	// MS is milliseconds since the storm started (wall clock).
	MS int64 `json:"ms"`
	// Server is the subject (-1 for cluster-wide events).
	Server int `json:"server"`
	// Kind: spawn, serving, kill, kill-recovery, wedge, wedge-kill,
	// blackout, restart, drain, term, plus the SLO verdict transitions
	// the supervisor's trackers emit (slo-healthy, slo-recovering,
	// slo-violating, slo-stalled, slo-down, slo-stopped).
	Kind string `json:"kind"`
	// Gen, when nonzero, is the generation involved.
	Gen uint64 `json:"gen,omitempty"`
}

// StormSide carries everything true-but-nondeterministic about a run.
type StormSide struct {
	Schema string       `json:"schema"`
	WallMS int64        `json:"wall_ms"`
	Events []StormEvent `json:"events"`
	// Retry aggregates summed over every client's RetryStats.
	Attempts   uint64 `json:"attempts"`
	Retries    uint64 `json:"retries"`
	Resolves   uint64 `json:"resolves"`
	Timeouts   uint64 `json:"timeouts"`
	Downs      uint64 `json:"downs"`
	GenChanges uint64 `json:"gen_changes"`
	Hangs      uint64 `json:"hangs"`
	// SLO is the per-server summary of the supervisor's streaming SLO
	// trackers: recovery windows observed from outside, overruns against
	// RecoverySLOMS, and total time not serving. Wall-clock derived, so
	// side-record only.
	SLO []StormServerSLO `json:"slo,omitempty"`
}

// StormServerSLO summarizes one server's SLO tracking over a storm.
type StormServerSLO struct {
	Server           int     `json:"server"`
	GenBumps         uint64  `json:"gen_bumps"`
	Recoveries       uint64  `json:"recoveries"`
	RecoveryOverruns uint64  `json:"recovery_overruns"`
	LastRecoveryMS   float64 `json:"last_recovery_ms"`
	MaxRecoveryMS    float64 `json:"max_recovery_ms"`
	TotalDownMS      float64 `json:"total_down_ms"`
}
