//go:build linux

package procharness

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/mp"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/sharded"
	"repro/internal/shm"
)

// ServerMain is the body of a server process: open the shared segment,
// open (or create) the heap file, build or re-attach the detectable
// object, and serve the rings until SIGTERM. Every phase is published
// to the segment's status page so the supervisor can watch the
// lifecycle from outside:
//
//	Attaching  → opening the heap file
//	Recovering → non-fresh heap: Attach + (hold) + Recover in progress
//	Serving    → sweeping rings; heartbeat advances
//	Stopped    → SIGTERM received, heap cleanly closed
//
// A SIGKILL can land anywhere in that sequence — that is the point.
// The process keeps no state the heap file doesn't: the reply cache and
// generation counter are rebuilt from the supervisor-witnessed restart
// count, and the object from the heap image.
func ServerMain(cfg ServerConfig) error {
	typ, err := typeByName(cfg.Object)
	if err != nil {
		return err
	}
	if cfg.Clients < 1 {
		return fmt.Errorf("procharness: server needs at least one client identity")
	}
	if cfg.Gen < 1 {
		return fmt.Errorf("procharness: generation must be >= 1, got %d", cfg.Gen)
	}
	seg, err := shm.OpenSeg(cfg.SegPath)
	if err != nil {
		return err
	}
	defer seg.Close()
	st := seg.Server()
	st.SetPID(os.Getpid())
	st.SetStateAt(shm.StateAttaching, nowNS())
	sink := obs.NewSink(obs.Config{RingSize: 256})
	telem := newTelemetry(seg, seg.ServerTelemetry(), sink)

	h, info, closeHeap, err := pmem.OpenFileInfo(cfg.HeapPath, cfg.heapWords())
	if err != nil {
		return err
	}
	if info.Dirty {
		// The previous incarnation was killed rather than shut down; the
		// counter is how the supervisor proves every SIGKILL produced a
		// dirty attach.
		st.IncDirty()
	}

	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	scfg := sharded.Config{
		Shards:         shards,
		Threads:        cfg.Clients,
		NodesPerThread: cfg.OpsPerClient + 16,
		ExtraNodes:     2*cfg.Clients + 16,
	}
	var front *sharded.Front
	if info.Fresh {
		front, err = sharded.New(h, 0, typ, scfg)
	} else {
		// Recovery window. The hold keeps the process in StateRecovering
		// long enough for a supervisor that wants to kill *during*
		// recovery to reliably land the kill inside the window; recovery
		// itself is idempotent, so the next incarnation simply runs it
		// again from the top. The window is bracketed into the sink —
		// recovery-duration telemetry the SLO trackers report against —
		// and published, so a monitor attached mid-recovery sees it.
		st.SetStateAt(shm.StateRecovering, nowNS())
		telem.publish(0)
		recStart := sink.Now()
		sink.Event(obs.EvRecoverBegin, -1, cfg.Gen)
		front, err = sharded.Attach(h, 0, typ)
		if err == nil {
			if cfg.RecoveryHoldMS > 0 {
				time.Sleep(time.Duration(cfg.RecoveryHoldMS) * time.Millisecond)
			}
			front.Recover()
			sink.ObserveSince(obs.PhaseRecover, obs.KindNone, recStart)
			sink.Event(obs.EvRecoverEnd, -1, cfg.Gen)
			telem.publish(0)
		}
	}
	if err != nil {
		closeHeap()
		return fmt.Errorf("procharness: build object: %w", err)
	}
	wire := sharded.NewWire(typ, front)

	eng, err := mp.NewEngine(mp.EngineConfig{
		Clients:  cfg.Clients,
		Capacity: 1, // unused: the wire object manages its own pools
		Heap:     h,
		NewObject: func(*pmem.Heap, int) (mp.Object, error) {
			return wire, nil
		},
	})
	if err != nil {
		closeHeap()
		return err
	}
	// Resume the generation line: the supervisor witnessed every restart
	// and passes 1 + restarts, so this incarnation serves a strictly
	// higher generation than any predecessor and the fence rejects every
	// ring-redelivered request from an earlier life.
	eng.RestoreGeneration(cfg.Gen - 1)
	eng.SetObs(sink)
	eng.SetOpKind(opKindFor(typ))
	gen := eng.NewGeneration()
	st.SetGen(gen)

	conn := shm.NewServerConn(seg, typ)
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM)
	st.SetStateAt(shm.StateServing, nowNS())
	telem.publish(0)

serve:
	for {
		select {
		case <-term:
			break serve
		default:
		}
		if st.WedgeRequested() {
			// Fault injection: play dead without dying. The process stays
			// alive (holding the heap flock) but stops serving and stops
			// heartbeating — exactly what a livelocked or deadlocked server
			// looks like from outside. The supervisor's hang detector must
			// notice the heartbeat stall and SIGKILL us.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		n := conn.Sweep(eng.Apply)
		if n > 0 {
			st.AddOps(uint64(n))
		} else {
			// Idle: sleep rather than spin — the deployment target may be
			// a single CPU shared with every client process.
			time.Sleep(200 * time.Microsecond)
		}
		st.Beat()
		// Publishing is rate-limited; a wedged server never reaches this,
		// so its telemetry freezes along with its heartbeat.
		telem.publish(10 * time.Millisecond)
	}

	// Clean shutdown: sync the arena, clear the dirty marker, release
	// the flock. The next open of this heap sees Dirty == false.
	st.SetStateAt(shm.StateStopped, nowNS())
	telem.publish(0)
	return closeHeap()
}
