//go:build linux

package procharness

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/mp"
	"repro/internal/obs"
	"repro/internal/shm"
)

// heartbeatStall is how long a serving server's heartbeat must be frozen
// before the supervisor declares the process hung (the wedge-injection
// signature) and SIGKILLs it.
const heartbeatStall = 400 * time.Millisecond

// clientResult is one workload client's exit.
type clientResult struct {
	global int
	err    error
}

// storm is the supervisor's running state.
type storm struct {
	cfg StormConfig
	bin string
	dir string

	segs     []*shm.Seg
	servers  []*exec.Cmd
	logs     []*os.File // server log sinks, one per server, append across restarts
	restarts []int      // kills witnessed per server; next gen = 1 + restarts
	backoffN []int      // consecutive restarts, for capped exponential backoff

	clients     []*exec.Cmd
	clientExit  chan clientResult
	clientsLeft int
	clientErr   error

	// slo holds one streaming SLO tracker per server, fed from the
	// status pages inside every supervisor wait loop; sloLast is the
	// last verdict each tracker issued, so transitions land in the side
	// timeline exactly once.
	slo     []*obs.SLOTracker
	sloLast []obs.Health

	start time.Time
	rep   StormReport
	side  StormSide
}

func (st *storm) event(kind string, server int, gen uint64) {
	st.side.Events = append(st.side.Events, StormEvent{
		MS:     time.Since(st.start).Milliseconds(),
		Server: server,
		Kind:   kind,
		Gen:    gen,
	})
}

func (st *storm) path(name string) string { return filepath.Join(st.dir, name) }

// sampleServerSLO folds one status-page sample of server i through its
// SLO tracker. Verdict transitions are recorded in the side timeline as
// slo-* events — the alive-but-violating-recovery-SLO state the
// heartbeat stall detector alone cannot name.
func (st *storm) sampleServerSLO(i int, now uint64) obs.HealthReport {
	sv := st.segs[i].Server()
	state := sv.State()
	rep := st.slo[i].Observe(obs.ServerSample{
		NowNS:        now,
		Serving:      state == shm.StateServing,
		Recovering:   state == shm.StateRecovering,
		Stopped:      state == shm.StateStopped,
		StateSinceNS: sv.StateChangedNS(),
		Heartbeat:    sv.Heartbeat(),
		Gen:          sv.Gen(),
		Ops:          sv.Ops(),
	})
	if rep.Verdict != st.sloLast[i] && rep.Verdict != obs.HealthUnknown {
		st.sloLast[i] = rep.Verdict
		st.event("slo-"+rep.Verdict.String(), i, sv.Gen())
	}
	return rep
}

// sampleSLO samples every server's SLO tracker once.
func (st *storm) sampleSLO() {
	now := uint64(time.Now().UnixNano())
	for i := range st.slo {
		st.sampleServerSLO(i, now)
	}
}

// spawnServer execs a new incarnation of server i at generation
// 1 + restarts[i].
func (st *storm) spawnServer(i, holdMS int) error {
	gen := uint64(st.restarts[i] + 1)
	env, err := roleEnviron(roleServer, ServerConfig{
		SegPath:        st.path(fmt.Sprintf("seg%d", i)),
		HeapPath:       st.path(fmt.Sprintf("heap%d.pmem", i)),
		Object:         st.cfg.Object,
		Shards:         st.cfg.ShardsPerServer,
		Clients:        st.cfg.ClientsPerServer + 1, // + drain identity
		OpsPerClient:   st.cfg.OpsPerClient,
		Gen:            gen,
		RecoveryHoldMS: holdMS,
	})
	if err != nil {
		return err
	}
	cmd := exec.Command(st.bin)
	cmd.Env = env
	cmd.Stdout = st.logs[i]
	cmd.Stderr = st.logs[i]
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("procharness: spawn server %d: %w", i, err)
	}
	st.servers[i] = cmd
	st.event("spawn", i, gen)
	return nil
}

// killServer SIGKILLs server i and reaps it. kind names the event
// ("kill", "kill-recovery", "wedge-kill").
func (st *storm) killServer(i int, kind string) {
	cmd := st.servers[i]
	cmd.Process.Kill()
	cmd.Wait()
	st.restarts[i]++
	st.rep.Kills++
	st.rep.KillsPerServer[i]++
	st.event(kind, i, uint64(st.restarts[i]))
}

// restartServer re-execs server i after the capped exponential backoff
// its consecutive-restart count has earned.
func (st *storm) restartServer(i, holdMS int) error {
	n := st.backoffN[i]
	st.backoffN[i]++
	delay := 5 * time.Millisecond << uint(min(n, 5))
	if delay > 160*time.Millisecond {
		delay = 160 * time.Millisecond
	}
	time.Sleep(delay)
	return st.spawnServer(i, holdMS)
}

// waitServing waits until server i publishes StateServing at the
// generation its incarnation owes (stale status words from the previous
// life can never satisfy this: the generation is new).
func (st *storm) waitServing(i int) error {
	want := uint64(st.restarts[i] + 1)
	sv := st.segs[i].Server()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if sv.State() == shm.StateServing && sv.Gen() == want {
			st.backoffN[i] = 0
			st.event("serving", i, want)
			return nil
		}
		st.sampleSLO()
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("procharness: server %d never reached serving gen %d", i, want)
}

// waitRecovering waits until server i publishes StateRecovering. Only
// restarted servers (non-fresh heap) enter it; the recovery hold keeps
// them there long enough to be killed inside the window.
func (st *storm) waitRecovering(i int) error {
	sv := st.segs[i].Server()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if sv.State() == shm.StateRecovering {
			st.event("recovering", i, uint64(st.restarts[i]+1))
			return nil
		}
		st.sampleSLO()
		time.Sleep(500 * time.Microsecond)
	}
	return fmt.Errorf("procharness: server %d never entered recovery", i)
}

// waitViolating lets server i's held recovery run past the recovery
// SLO before returning, so every kill-during-recovery sequence also
// exercises the alive-but-violating verdict — a server making progress,
// just not fast enough, which the heartbeat stall detector alone cannot
// distinguish from healthy. Best-effort: it returns as soon as the
// tracker says HealthViolating, or when the window ends first (a hold
// shorter than the SLO).
func (st *storm) waitViolating(i int) {
	hold := time.Duration(st.cfg.RecoveryHoldMS) * time.Millisecond
	deadline := time.Now().Add(hold + time.Second)
	for time.Now().Before(deadline) {
		rep := st.sampleServerSLO(i, uint64(time.Now().UnixNano()))
		if rep.Verdict == obs.HealthViolating {
			return
		}
		if st.segs[i].Server().State() != shm.StateRecovering {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitHung watches server i through its SLO tracker and returns once
// the tracker declares the process stalled: nominally serving but with
// a heartbeat frozen past heartbeatStall. This is the supervisor's
// general hang detector, exercised by the wedge fault — and distinct
// from HealthViolating, where the server is alive and progressing but
// outside an SLO.
func (st *storm) waitHung(i int) error {
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
		rep := st.sampleServerSLO(i, uint64(time.Now().UnixNano()))
		if rep.Verdict == obs.HealthStalled {
			return nil
		}
	}
	return fmt.Errorf("procharness: server %d heartbeat never stalled after wedge", i)
}

// serverOps sums the workload clients' completed-op counters for server
// s — the progress value directive triggers compare against.
func (st *storm) serverOps(s int) uint64 {
	var sum uint64
	for c := 0; c < st.cfg.ClientsPerServer; c++ {
		sum += st.segs[s].Client(c).Ops()
	}
	return sum
}

// clientsDone reports whether every workload client of server s has
// finished.
func (st *storm) clientsDone(s int) bool {
	for c := 0; c < st.cfg.ClientsPerServer; c++ {
		if !st.segs[s].Client(c).Done() {
			return false
		}
	}
	return true
}

// drainExits consumes any client exits that have arrived, recording the
// first failure.
func (st *storm) drainExits() {
	for {
		select {
		case res := <-st.clientExit:
			st.clientsLeft--
			if res.err != nil && st.clientErr == nil {
				st.clientErr = fmt.Errorf("client %d failed: %w (log: %s)",
					res.global, res.err, st.path(fmt.Sprintf("client%d.log", res.global)))
			}
		default:
			return
		}
	}
}

// waitTrigger blocks until directive d's victim has made enough client
// progress (or its clients finished, force-firing the leftover).
func (st *storm) waitTrigger(d directive) error {
	target := d.server
	if target < 0 {
		target = 0
	}
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		st.drainExits()
		if st.clientErr != nil {
			return st.clientErr
		}
		if st.serverOps(target) >= d.trigger || st.clientsDone(target) {
			return nil
		}
		st.sampleSLO()
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("procharness: trigger %d on server %d never reached (storm wedged)", d.trigger, target)
}

// execute runs one directive to completion: the victim(s) end up
// serving again before the next directive is considered.
func (st *storm) execute(d directive) error {
	switch d.kind {
	case dKill:
		st.killServer(d.server, "kill")
		if err := st.restartServer(d.server, 0); err != nil {
			return err
		}
		return st.waitServing(d.server)

	case dRKill:
		// Two kills: the first forces the successor into recovery (with a
		// hold stretching the window), the second lands inside it. The
		// recovery procedure itself is interrupted and must be re-run —
		// the kill-during-recovery case of the taxonomy.
		st.killServer(d.server, "kill")
		if err := st.restartServer(d.server, st.cfg.RecoveryHoldMS); err != nil {
			return err
		}
		if err := st.waitRecovering(d.server); err != nil {
			return err
		}
		st.waitViolating(d.server)
		st.killServer(d.server, "kill-recovery")
		st.rep.KillsDuringRecovery++
		if err := st.restartServer(d.server, 0); err != nil {
			return err
		}
		return st.waitServing(d.server)

	case dWedge:
		// Hang injection: the server plays dead without dying. Only the
		// heartbeat stall gives it away; the hang detector must kill it
		// (SIGKILL — it is unresponsive by construction).
		st.event("wedge", d.server, 0)
		st.segs[d.server].Server().RequestWedge()
		if err := st.waitHung(d.server); err != nil {
			return err
		}
		st.killServer(d.server, "wedge-kill")
		st.rep.WedgeKills++
		st.segs[d.server].Server().ClearWedge()
		if err := st.restartServer(d.server, 0); err != nil {
			return err
		}
		return st.waitServing(d.server)

	default: // dBlackout
		// Whole-cluster outage: every server killed before any restarts,
		// so for a window the deployment has no live server at all.
		st.event("blackout", -1, 0)
		for s := 0; s < st.cfg.Servers; s++ {
			st.killServer(s, "kill")
		}
		st.rep.Blackouts++
		for s := 0; s < st.cfg.Servers; s++ {
			if err := st.restartServer(s, 0); err != nil {
				return err
			}
		}
		for s := 0; s < st.cfg.Servers; s++ {
			if err := st.waitServing(s); err != nil {
				return err
			}
		}
		return nil
	}
}

// spawnClient execs one client process and registers its exit monitor.
func (st *storm) spawnClient(cfg ClientConfig, logName string) error {
	env, err := roleEnviron(roleClient, cfg)
	if err != nil {
		return err
	}
	logf, err := os.OpenFile(st.path(logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(st.bin)
	cmd.Env = env
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("procharness: spawn client %d: %w", cfg.GlobalID, err)
	}
	st.clients = append(st.clients, cmd)
	st.clientsLeft++
	go func(g int) {
		err := cmd.Wait()
		logf.Close()
		st.clientExit <- clientResult{global: g, err: err}
	}(cfg.GlobalID)
	return nil
}

// teardown kills every remaining process (abort path).
func (st *storm) teardown() {
	for _, cmd := range st.servers {
		if cmd != nil && cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
	for _, cmd := range st.clients {
		if cmd != nil && cmd.ProcessState == nil {
			cmd.Process.Kill()
		}
	}
	// Reap outstanding client monitors.
	for st.clientsLeft > 0 {
		select {
		case <-st.clientExit:
			st.clientsLeft--
		case <-time.After(10 * time.Second):
			return
		}
	}
}

// RunStorm runs one full multi-process crash storm: lay out segments
// and heap files, spawn everything, execute the seeded fault schedule,
// drain, shut down cleanly, and verify the merged histories. The
// returned report is deterministic for a passing (seed, config) pair;
// the side record carries wall-clock data and the event timeline.
func RunStorm(cfg StormConfig) (StormReport, StormSide, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return StormReport{}, StormSide{}, err
	}
	if !shm.Supported() {
		return StormReport{}, StormSide{}, fmt.Errorf("procharness: shared-memory segments unsupported on this platform")
	}
	if _, err := typeByName(cfg.Object); err != nil {
		return StormReport{}, StormSide{}, err
	}
	bin := cfg.Bin
	if bin == "" {
		var err error
		if bin, err = os.Executable(); err != nil {
			return StormReport{}, StormSide{}, err
		}
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "dssproc-"); err != nil {
			return StormReport{}, StormSide{}, err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return StormReport{}, StormSide{}, err
	}
	if !cfg.KeepDir {
		defer os.RemoveAll(dir)
	}

	cps := cfg.ClientsPerServer
	st := &storm{
		cfg:        cfg,
		bin:        bin,
		dir:        dir,
		segs:       make([]*shm.Seg, cfg.Servers),
		servers:    make([]*exec.Cmd, cfg.Servers),
		logs:       make([]*os.File, cfg.Servers),
		restarts:   make([]int, cfg.Servers),
		backoffN:   make([]int, cfg.Servers),
		clientExit: make(chan clientResult, cfg.Servers*(cps+1)),
		slo:        make([]*obs.SLOTracker, cfg.Servers),
		sloLast:    make([]obs.Health, cfg.Servers),
		start:      time.Now(),
		rep: StormReport{
			Schema:           ReportSchema,
			Object:           cfg.Object,
			Seed:             cfg.Seed,
			Servers:          cfg.Servers,
			ClientsPerServer: cps,
			Clients:          cfg.Servers * cps,
			OpsPerClient:     cfg.OpsPerClient,
			ShardsPerServer:  cfg.ShardsPerServer,
			RingSlots:        cfg.RingSlots,
			KillsPerServer:   make([]int, cfg.Servers),
			FinalGenerations: make([]uint64, cfg.Servers),
			Violations:       []string{},
		},
		side: StormSide{Schema: TimelineSchema},
	}
	fail := func(err error) (StormReport, StormSide, error) {
		st.teardown()
		for _, f := range st.logs {
			if f != nil {
				f.Close()
			}
		}
		return StormReport{}, StormSide{}, err
	}

	sloCfg := obs.SLOConfig{
		RecoveryMaxNS: uint64(cfg.RecoverySLOMS) * uint64(time.Millisecond),
		StallNS:       uint64(heartbeatStall),
	}
	for s := 0; s < cfg.Servers; s++ {
		st.slo[s] = obs.NewSLOTracker(sloCfg)
	}

	// Segments and servers (generation 1, fresh heaps). Every segment
	// carries one telemetry slot per process, sized for the fixed-word
	// snapshot encoding, so dssmon can attach read-only and watch.
	layout := shm.Layout{
		Clients: cps + 1, Slots: cfg.RingSlots, SlotWords: shm.FrameSlotWords,
		TelemWords: obs.EncodedSnapshotWords,
	}
	for s := 0; s < cfg.Servers; s++ {
		seg, err := shm.CreateSeg(st.path(fmt.Sprintf("seg%d", s)), layout)
		if err != nil {
			return fail(err)
		}
		st.segs[s] = seg
		logf, err := os.OpenFile(st.path(fmt.Sprintf("server%d.log", s)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fail(err)
		}
		st.logs[s] = logf
		if err := st.spawnServer(s, 0); err != nil {
			return fail(err)
		}
	}
	for s := 0; s < cfg.Servers; s++ {
		if err := st.waitServing(s); err != nil {
			return fail(err)
		}
	}

	// Workload clients.
	for s := 0; s < cfg.Servers; s++ {
		for c := 0; c < cps; c++ {
			g := s*cps + c
			err := st.spawnClient(ClientConfig{
				SegPath:          st.path(fmt.Sprintf("seg%d", s)),
				Object:           cfg.Object,
				ID:               c,
				GlobalID:         g,
				Ops:              cfg.OpsPerClient,
				HistoryPath:      st.path(fmt.Sprintf("client%d.json", g)),
				ObsPath:          st.path(fmt.Sprintf("client%d.obs.json", g)),
				Seed:             cfg.Seed*1009 + int64(g),
				TimeoutMS:        cfg.TimeoutMS,
				AttemptTimeoutMS: cfg.AttemptTimeoutMS,
				BackoffMaxMS:     cfg.BackoffMaxMS,
			}, fmt.Sprintf("client%d.log", g))
			if err != nil {
				return fail(err)
			}
		}
	}

	// The seeded fault schedule, serially: each directive waits for its
	// progress trigger, fires, and leaves the victim serving again.
	for _, d := range buildSchedule(cfg) {
		if err := st.waitTrigger(d); err != nil {
			return fail(err)
		}
		if err := st.execute(d); err != nil {
			return fail(err)
		}
	}

	// Let the remaining workload finish, keeping the SLO trackers fed.
	finish := time.After(5 * time.Minute)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for st.clientsLeft > 0 {
		select {
		case res := <-st.clientExit:
			st.clientsLeft--
			if res.err != nil && st.clientErr == nil {
				st.clientErr = fmt.Errorf("client %d failed: %w (log: %s)",
					res.global, res.err, st.path(fmt.Sprintf("client%d.log", res.global)))
			}
		case <-tick.C:
			st.sampleSLO()
		case <-finish:
			return fail(fmt.Errorf("procharness: workload never finished (storm wedged)"))
		}
	}
	if st.clientErr != nil {
		return fail(st.clientErr)
	}

	// Drain each structure to EMPTY through a fresh client identity, so
	// conservation is checkable and "ended empty" is proven.
	for s := 0; s < cfg.Servers; s++ {
		st.event("drain", s, 0)
		g := cfg.Servers*cps + s
		err := st.spawnClient(ClientConfig{
			SegPath:          st.path(fmt.Sprintf("seg%d", s)),
			Object:           cfg.Object,
			ID:               cps,
			GlobalID:         g,
			Drain:            true,
			MaxDrain:         cps*cfg.OpsPerClient/2 + cps + 4,
			HistoryPath:      st.path(fmt.Sprintf("drain%d.json", s)),
			ObsPath:          st.path(fmt.Sprintf("drain%d.obs.json", s)),
			Seed:             cfg.Seed*1009 + int64(g),
			TimeoutMS:        cfg.TimeoutMS,
			AttemptTimeoutMS: cfg.AttemptTimeoutMS,
			BackoffMaxMS:     cfg.BackoffMaxMS,
		}, fmt.Sprintf("drain%d.log", s))
		if err != nil {
			return fail(err)
		}
	}
	finish = time.After(2 * time.Minute)
	for st.clientsLeft > 0 {
		select {
		case res := <-st.clientExit:
			st.clientsLeft--
			if res.err != nil && st.clientErr == nil {
				st.clientErr = fmt.Errorf("drain client %d failed: %w", res.global, res.err)
			}
		case <-tick.C:
			st.sampleSLO()
		case <-finish:
			return fail(fmt.Errorf("procharness: drain never finished"))
		}
	}
	if st.clientErr != nil {
		return fail(st.clientErr)
	}

	// Graceful shutdown: SIGTERM, expect exit 0, read the final status
	// page, and check the structural invariants every kill must have
	// left behind.
	for s := 0; s < cfg.Servers; s++ {
		cmd := st.servers[s]
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				st.rep.Violations = append(st.rep.Violations,
					fmt.Sprintf("server %d did not exit cleanly on SIGTERM: %v", s, err))
			} else {
				st.rep.CleanShutdowns++
			}
		case <-time.After(time.Minute):
			cmd.Process.Kill()
			cmd.Wait()
			st.rep.Violations = append(st.rep.Violations,
				fmt.Sprintf("server %d ignored SIGTERM", s))
		}
		st.event("term", s, 0)
		sv := st.segs[s].Server()
		st.rep.DirtyAttaches += int(sv.Dirty())
		st.rep.FinalGenerations[s] = sv.Gen()
		if want := uint64(1 + st.rep.KillsPerServer[s]); sv.Gen() != want {
			st.rep.Violations = append(st.rep.Violations,
				fmt.Sprintf("server %d ended at generation %d, want %d (1 + %d kills): broken generation line",
					s, sv.Gen(), want, st.rep.KillsPerServer[s]))
		}
	}
	if st.rep.DirtyAttaches != st.rep.Kills {
		st.rep.Violations = append(st.rep.Violations,
			fmt.Sprintf("%d dirty attaches for %d kills: a killed server did not leave (or a reopen did not see) the dirty marker",
				st.rep.DirtyAttaches, st.rep.Kills))
	}

	// Merge and verify the histories, server by server.
	for s := 0; s < cfg.Servers; s++ {
		var hists []clientHistory
		for c := 0; c < cps; c++ {
			h, err := readHistory(st.path(fmt.Sprintf("client%d.json", s*cps+c)))
			if err != nil {
				return fail(err)
			}
			hists = append(hists, h)
			st.rep.Ops += uint64(len(h.Ops))
			st.side.addStats(h.Stats)
		}
		dh, err := readHistory(st.path(fmt.Sprintf("drain%d.json", s)))
		if err != nil {
			return fail(err)
		}
		hists = append(hists, dh)
		st.side.addStats(dh.Stats)
		enq, deq, bad := verifyServer(cfg.Object, s, hists)
		st.rep.ValuesEnqueued += enq
		st.rep.ValuesDequeued += deq
		st.rep.Violations = append(st.rep.Violations, bad...)
	}

	// Close out the SLO trackers: one final sample sees StateStopped, and
	// the per-server accounting goes into the side record.
	st.sampleSLO()
	for s := 0; s < cfg.Servers; s++ {
		rep := st.slo[s].Report()
		st.side.SLO = append(st.side.SLO, StormServerSLO{
			Server:           s,
			GenBumps:         rep.GenBumps,
			Recoveries:       rep.Recoveries,
			RecoveryOverruns: rep.RecoveryOverruns,
			LastRecoveryMS:   float64(rep.LastRecoveryNS) / 1e6,
			MaxRecoveryMS:    float64(rep.MaxRecoveryNS) / 1e6,
			TotalDownMS:      float64(rep.TotalDownNS) / 1e6,
		})
	}

	for _, f := range st.logs {
		f.Close()
	}
	st.side.WallMS = time.Since(st.start).Milliseconds()
	return st.rep, st.side, nil
}

func (sd *StormSide) addStats(s mp.RetryStats) {
	sd.Attempts += s.Attempts
	sd.Retries += s.Retries
	sd.Resolves += s.Resolves
	sd.Timeouts += s.Timeouts
	sd.Downs += s.Downs
	sd.GenChanges += s.GenChanges
	sd.Hangs += s.Hangs
}
