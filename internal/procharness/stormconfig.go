package procharness

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/shm"
)

// StormSupported reports whether this platform can run multi-process
// storms (shared-memory segments, flock, POSIX signals).
func StormSupported() bool { return shm.Supported() }

// StormConfig describes one multi-process crash storm.
type StormConfig struct {
	// Seed drives the directive schedule (kill points, victims) and the
	// clients' retry jitter. Same seed, same schedule.
	Seed int64
	// Object is "queue" or "stack".
	Object string
	// Servers is the number of server processes, each with its own heap
	// file, shared segment, and client set.
	Servers int
	// ClientsPerServer workload client processes attack each server.
	ClientsPerServer int
	// OpsPerClient is each client's workload length (even: alternating
	// insert/remove).
	OpsPerClient int
	// KillsPerServer direct SIGKILLs are scheduled per server, plus
	// RecoveryKillsPerServer kill-during-recovery sequences (each is two
	// kills: one to force a recovery, one landed inside it).
	KillsPerServer         int
	RecoveryKillsPerServer int
	// Blackouts is the number of whole-cluster outages: every server
	// SIGKILLed, all dead at once, then all restarted.
	Blackouts int
	// Wedges is the number of hang injections: a server is asked (via
	// the segment's wedge word) to stop serving and heartbeating without
	// dying; the supervisor's heartbeat stall detector must kill it.
	Wedges int
	// RingSlots sizes each ring (default 128).
	RingSlots int
	// ShardsPerServer is the sharded front's width (default 1, which
	// the strict FIFO/LIFO checkers require).
	ShardsPerServer int
	// RecoveryHoldMS stretches restarted servers' recovery windows so
	// scheduled mid-recovery kills reliably land inside them (default
	// 400).
	RecoveryHoldMS int
	// RecoverySLOMS is the supervisor's recovery-duration SLO: a
	// restarted server still recovering after this long is recorded as
	// slo-violating in the side timeline and counted as an overrun in
	// the per-server SLO summary (default 250). Side-record only — an
	// overrun is telemetry, never a storm failure.
	RecoverySLOMS int
	// Dir is the working directory for segments, heaps, logs, and
	// histories ("" = fresh temp dir, removed afterwards unless
	// KeepDir).
	Dir     string
	KeepDir bool
	// Bin is the role binary to exec ("" = this executable; its main or
	// TestMain must call MaybeRole).
	Bin string
	// Client knobs, passed through (zero = ClientMain defaults).
	TimeoutMS        int
	AttemptTimeoutMS int
	BackoffMaxMS     int
}

func (c StormConfig) withDefaults() StormConfig {
	if c.Object == "" {
		c.Object = "queue"
	}
	if c.Servers == 0 {
		c.Servers = 1
	}
	if c.ClientsPerServer == 0 {
		c.ClientsPerServer = 4
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 100
	}
	if c.RingSlots == 0 {
		c.RingSlots = 128
	}
	if c.ShardsPerServer == 0 {
		c.ShardsPerServer = 1
	}
	if c.RecoveryHoldMS == 0 {
		c.RecoveryHoldMS = 400
	}
	if c.RecoverySLOMS == 0 {
		c.RecoverySLOMS = 250
	}
	return c
}

func (c StormConfig) validate() error {
	switch {
	case c.Servers < 1:
		return fmt.Errorf("procharness: need at least one server")
	case c.ClientsPerServer < 1:
		return fmt.Errorf("procharness: need at least one client per server")
	case c.OpsPerClient < 2 || c.OpsPerClient%2 != 0:
		return fmt.Errorf("procharness: ops per client must be even and >= 2, got %d", c.OpsPerClient)
	case c.KillsPerServer < 0 || c.RecoveryKillsPerServer < 0 || c.Blackouts < 0 || c.Wedges < 0:
		return fmt.Errorf("procharness: negative fault counts")
	}
	return nil
}

// ExpectedKills returns the total SIGKILL count the schedule will
// deliver: direct kills, two per recovery-kill sequence, one per server
// per blackout, one per wedge.
func (c StormConfig) ExpectedKills() int {
	c = c.withDefaults()
	return c.Servers*(c.KillsPerServer+2*c.RecoveryKillsPerServer+c.Blackouts) + c.Wedges
}

// A directive is one scheduled fault. Directives execute serially, in
// trigger order, each gated on the victim server's clients having
// completed `trigger` operations (or having finished) — progress-based
// triggers are what make the schedule meaningful on any machine speed
// while keeping every count seed-deterministic.
type directive struct {
	kind    dirKind
	server  int // victim; -1 for blackout
	trigger uint64
}

type dirKind int

const (
	dKill dirKind = iota
	dRKill
	dWedge
	dBlackout
)

func (k dirKind) String() string {
	switch k {
	case dKill:
		return "kill"
	case dRKill:
		return "rkill"
	case dWedge:
		return "wedge"
	default:
		return "blackout"
	}
}

// buildSchedule derives the seeded fault schedule. Triggers are drawn
// from [1, 3/4 * workload] so every directive fires while clients are
// still working (leftovers force-fire when the victim's clients
// finish).
func buildSchedule(cfg StormConfig) []directive {
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxT := int64(cfg.ClientsPerServer*cfg.OpsPerClient) * 3 / 4
	if maxT < 1 {
		maxT = 1
	}
	draw := func() uint64 { return uint64(1 + rng.Int63n(maxT)) }
	var ds []directive
	for s := 0; s < cfg.Servers; s++ {
		for k := 0; k < cfg.KillsPerServer; k++ {
			ds = append(ds, directive{dKill, s, draw()})
		}
		for k := 0; k < cfg.RecoveryKillsPerServer; k++ {
			ds = append(ds, directive{dRKill, s, draw()})
		}
	}
	for w := 0; w < cfg.Wedges; w++ {
		ds = append(ds, directive{dWedge, w % cfg.Servers, draw()})
	}
	for b := 0; b < cfg.Blackouts; b++ {
		ds = append(ds, directive{dBlackout, -1, draw()})
	}
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].trigger < ds[j].trigger })
	return ds
}
