package procharness

import (
	"time"

	"repro/internal/dss"
	"repro/internal/obs"
	"repro/internal/shm"
	"repro/internal/spec"
)

// nowNS is the wall clock the roles stamp shared state with.
func nowNS() uint64 { return uint64(time.Now().UnixNano()) }

// telemetry wires one process's obs sink to its seqlock-published slot
// in the shared segment. publish() is wait-free for readers and cheap
// enough to call from serve loops; a SIGKILL mid-publish can never
// surface a torn snapshot (the slot's even/odd header discipline).
type telemetry struct {
	sink *obs.Sink
	pub  *shm.TelemetryPublisher
	buf  []uint64
	last time.Time
}

// newTelemetry builds the publisher side for slot (a nil slot, or a
// slot too small for the fixed-word encoding, disables publishing; the
// sink still records).
func newTelemetry(seg *shm.Seg, slot *shm.TelemetrySlot, sink *obs.Sink) *telemetry {
	t := &telemetry{sink: sink}
	if slot != nil && seg.TelemWords() >= obs.EncodedSnapshotWords {
		t.pub = slot.Publisher()
		t.buf = make([]uint64, seg.TelemWords())
	}
	return t
}

// publish snapshots the sink into the slot. With minGap nonzero the
// publish is skipped unless that much time passed since the last one —
// the serve- and workload-loop rate limit.
func (t *telemetry) publish(minGap time.Duration) {
	if t.pub == nil || (minGap > 0 && time.Since(t.last) < minGap) {
		return
	}
	t.last = time.Now()
	snap := t.sink.Snapshot()
	snap.Captured = nowNS()
	snap.EncodeWords(t.buf)
	t.pub.Publish(t.buf)
}

// opKindFor translates the wire vocabulary of typ back into op-kind
// labels for per-(phase×kind) attribution.
func opKindFor(typ dss.Type) func(spec.Op) obs.OpKind {
	return func(op spec.Op) obs.OpKind {
		if dop, ok := typ.FromSpec(op); ok {
			return dss.KindOf(dop.Kind)
		}
		return obs.KindNone
	}
}
