//go:build !linux

package procharness

import "fmt"

// MaybeRole is a no-op on platforms without shared-memory segment
// support: no supervisor can have spawned this process as a role.
func MaybeRole() {}

// RunStorm needs mmap'd segments, flock, and POSIX signals; on other
// platforms it reports the storm unsupported (callers skip gracefully).
func RunStorm(cfg StormConfig) (StormReport, StormSide, error) {
	return StormReport{}, StormSide{}, fmt.Errorf("procharness: multi-process storms unsupported on this platform")
}
