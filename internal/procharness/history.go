package procharness

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/check"
)

// readHistory loads one client's history file.
func readHistory(path string) (clientHistory, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return clientHistory{}, fmt.Errorf("procharness: read history: %w", err)
	}
	var h clientHistory
	if err := json.Unmarshal(raw, &h); err != nil {
		return clientHistory{}, fmt.Errorf("procharness: parse %s: %w", path, err)
	}
	if h.Schema != historySchema {
		return clientHistory{}, fmt.Errorf("procharness: %s has schema %q, want %q", path, h.Schema, historySchema)
	}
	return h, nil
}

// verifyServer checks the merged client histories of one server: the
// order checker (FIFO for queues, LIFO for stacks, over the shared
// ticket clock's real-time intervals) plus value conservation — every
// value inserted exactly once, removed exactly once, and the drain
// client's closing EMPTY proving nothing was left behind. Returns the
// conservation totals and any violations, each prefixed with the
// server index.
func verifyServer(object string, server int, hists []clientHistory) (enq, deq int, bad []string) {
	report := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf("server %d: ", server)+fmt.Sprintf(format, args...))
	}

	inserted := map[uint64]int{}
	removed := map[uint64]int{}
	var qops []check.QOp
	var sops []check.SOp
	drainClosed := false
	for _, h := range hists {
		for i, op := range h.Ops {
			switch {
			case op.K == "i" && op.R == "a":
				inserted[op.V]++
				qops = append(qops, check.QOp{Kind: check.QEnq, V: op.V, Inv: op.Inv, Ret: op.Ret})
				sops = append(sops, check.SOp{Kind: check.SPush, V: op.V, Inv: op.Inv, Ret: op.Ret})
			case op.K == "r" && op.R == "v":
				removed[op.RV]++
				qops = append(qops, check.QOp{Kind: check.QDeq, V: op.RV, Inv: op.Inv, Ret: op.Ret})
				sops = append(sops, check.SOp{Kind: check.SPop, V: op.RV, Inv: op.Inv, Ret: op.Ret})
			case op.K == "r" && op.R == "e":
				qops = append(qops, check.QOp{Kind: check.QDeqEmpty, Inv: op.Inv, Ret: op.Ret})
				sops = append(sops, check.SOp{Kind: check.SPopEmpty, Inv: op.Inv, Ret: op.Ret})
				if h.Drain && i == len(h.Ops)-1 {
					drainClosed = true
				}
			default:
				report("client %d op %d: malformed record %+v", h.GlobalID, i, op)
			}
		}
	}
	if !drainClosed {
		report("drain history does not end with EMPTY")
	}

	// Conservation: exactly-once end to end, across every kill.
	for v, n := range inserted {
		if n > 1 {
			report("value %#x inserted %d times (duplicated insert)", v, n)
		}
		switch m := removed[v]; {
		case m == 0:
			report("value %#x inserted but never removed (lost despite drain-to-empty)", v)
		case m > 1:
			report("value %#x removed %d times (duplicated remove)", v, m)
		}
		enq += n
	}
	for v, m := range removed {
		if inserted[v] == 0 {
			report("value %#x removed but never inserted (fabricated)", v)
		}
		deq += m
	}

	var order []string
	if object == "stack" {
		order = check.CheckStackHistory(sops)
	} else {
		order = check.CheckQueueHistory(qops)
	}
	for _, v := range order {
		report("%s", v)
	}
	return enq, deq, bad
}
