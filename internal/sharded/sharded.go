// Package sharded composes N independent detectable objects of one type
// into a single detectable front-end, multiplying the bandwidth of the
// hot pointer words (head/tail, top) that caps the flat Figure-5a curves
// while preserving the paper's per-process recovery contract.
//
// The front is generic over dss.Object: any detectable container type —
// the DSS queue, the DSS stack, the CASWithEffect queues — shards the
// same way, because the composition never looks inside an operation; it
// only routes. Per-shard semantics are the object's own (FIFO per shard
// for queues, LIFO per shard for stacks); globally the composition is
// k-relaxed (k bounded by the shard count times the in-flight window):
// values dispatched round-robin to shards obey their shard's order, but
// values resident on different shards may overtake each other globally.
// Crucially, detectability is NOT relaxed: every individual operation
// lands on exactly one shard, that shard's history is strictly
// linearizable w.r.t. D⟨T⟩ (Theorem 1 applies per shard unchanged), and
// the persisted per-process route cursor names the shard holding the
// process's most recent prepared operation — so Resolve after a crash
// delegates to exactly one per-shard resolve and the exactly-once
// guarantee carries over to the composition. See DESIGN.md for the full
// argument and for why the cursor needs no CAS (it is single-owner,
// per-process state, like X[p] itself).
//
// Cursor persistence protocol: a detectable prep first runs the shard
// prep (which persists the shard's X[p]), then persists the cursor line
// (route + round-robin hints) with a single flush. A crash between the
// two leaves the route pointing at the previous shard, so the new prep
// resolves as "never happened" — a legal outcome for an operation whose
// prep had not returned. The stale X entry on the previous shard is
// withdrawn via the object's Abandon either eagerly (on the next prep
// that moves away from it) or deterministically during Recover.
//
// The front itself satisfies dss.Object: a composition of detectable
// objects is a detectable object, so everything written against the
// contract — sweeps, soaks, benchmarks, the wire engine — drives a
// sharded instance unchanged.
//
// Route-by-key mode: types that declare KeyRouted (the keyed hash map)
// replace the round-robin shard choice with a key-hash one — every
// operation on key k lands on shard KeyShard(k), so each key lives on
// exactly one shard and the composition is the exact sequential type,
// not a k-relaxation. Everything else — the persisted claim-before-prep
// cursor, its X-first-cursor-second persist order, tag riding, Abandon,
// Recover — is byte-for-byte the cursor protocol above; only the shard
// selection differs, and keyed execs never scan (the key's shard is the
// authority for its absence). Existing container types keep cursor RR,
// so heaps built before this mode attach unchanged.
package sharded

import (
	"fmt"
	"sync"

	"repro/internal/dss"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// Cursor line layout: one cache line per process, four words. Route and
// tag share the line on purpose: the crash adversary settles whole cache
// lines (pmem.Heap.Crash copies or drops a line atomically), so a route
// and the tag of the operation it names can never be torn apart by a
// crash — Resolve always reports a mutually consistent (op, tag) pair.
const (
	curRoute = 0 // 0 = no prepared op; s+1 = prepared on shard s
	curInsRR = 1 // next shard for an insert (round-robin hint)
	curRemRR = 2 // next shard for a remove scan (round-robin hint)
	curTag   = 3 // tag of the routed op (PrepTagged path only)
)

// Meta line layout. The magic word packs the front's own magic in its
// low 32 bits and the object type code above it, so Attach validates
// both with a single load.
const (
	cfgMagic = 0
	cfgShard = 1
	cfgThrd  = 2
	cfgCur   = 3

	magicSharded = 0x4453_5348 // "DSSH"
)

// Config parameterizes New.
type Config struct {
	// Shards is the number of underlying detectable objects.
	Shards int
	// Threads is the number of processes (shared by every shard).
	Threads int
	// NodesPerThread and ExtraNodes size each shard's node pool (they are
	// per-shard figures, passed to the object factory unchanged).
	NodesPerThread int
	ExtraNodes     int
	// Descriptors passes through to descriptor-pooled types (dss.Config).
	Descriptors int
}

// Tracer observes shard-level operation boundaries. It exists for
// conformance tests: a sharded operation may touch several shards (a
// remove scans), and the tracer reports each shard-level sub-operation
// with its D⟨T⟩ op and response so per-shard histories can be recorded
// and checked. Production code leaves it nil.
type Tracer interface {
	// OpBegin marks the invocation of op on shard by process tid.
	OpBegin(shard, tid int, op spec.Op)
	// OpEnd marks its return with resp.
	OpEnd(shard, tid int, resp spec.Resp)
}

// Front is the sharded detectable front-end over N objects of one type.
type Front struct {
	h       *pmem.Heap
	typ     dss.Type
	shards  []dss.Object
	threads int
	curBase pmem.Addr
	tracer  Tracer
	// obs, when non-nil, receives per-shard routing/abandon counters
	// (obs.ShardCounter). Recording never touches the heap, so an
	// unobserved run is step-for-step identical to an observed one.
	obs *obs.Sink
	// last[tid] is the volatile dispatch hint of the composition (see
	// the dss package comment): the kind of tid's most recent Prep,
	// rebuilt from the persistent image by Recover/ResetVolatile, so
	// Exec dispatches without extra heap reads.
	last []dss.Kind
	// byKey selects key-hash shard routing (types with KeyRouted).
	byKey bool
	// pendTag[tid] holds the tag a PrepTagged will persist with the
	// cursor; tagged[tid] marks that the next moveRoute must store it.
	// Both are volatile and consumed by the first moveRoute of the prep,
	// so the untagged path (plain Prep, every benchmark) performs zero
	// extra heap operations — the committed virtual-time figures are
	// step-for-step unchanged.
	pendTag []uint64
	tagged  []bool
}

var _ dss.Object = (*Front)(nil)

// New builds a sharded front of typ objects in h. It claims root slot
// rootSlot (its own metadata) plus typ.RootSlots consecutive slots per
// shard, starting at rootSlot+1.
func New(h *pmem.Heap, rootSlot int, typ dss.Type, cfg Config) (*Front, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("sharded: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Threads < 1 {
		return nil, fmt.Errorf("sharded: need at least 1 thread, got %d", cfg.Threads)
	}
	slots := typ.RootSlots
	if slots < 1 {
		slots = 1
	}
	if rootSlot < 0 || rootSlot+1+cfg.Shards*slots > pmem.NumRoots {
		return nil, fmt.Errorf("sharded: %d %s shards from root slot %d exceed the %d root slots",
			cfg.Shards, typ.Name, rootSlot, pmem.NumRoots)
	}
	meta, err := h.Alloc(pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("sharded: meta: %w", err)
	}
	curBase, err := h.Alloc(cfg.Threads * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("sharded: cursors: %w", err)
	}
	q := &Front{
		h: h, typ: typ, threads: cfg.Threads, curBase: curBase,
		byKey:   typ.KeyRouted,
		last:    make([]dss.Kind, cfg.Threads),
		pendTag: make([]uint64, cfg.Threads),
		tagged:  make([]bool, cfg.Threads),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := typ.New(h, rootSlot+1+i*slots, dss.Config{
			Threads:        cfg.Threads,
			NodesPerThread: cfg.NodesPerThread,
			ExtraNodes:     cfg.ExtraNodes,
			Descriptors:    cfg.Descriptors,
		})
		if err != nil {
			return nil, fmt.Errorf("sharded: %s shard %d: %w", typ.Name, i, err)
		}
		q.shards = append(q.shards, sh)
	}
	// Spread the initial round-robin hints so a uniform thread population
	// starts uniformly distributed over shards.
	for tid := 0; tid < cfg.Threads; tid++ {
		cur := q.cursorAddr(tid)
		h.Store(cur+curRoute, 0)
		h.Store(cur+curInsRR, uint64(tid%cfg.Shards))
		h.Store(cur+curRemRR, uint64(tid%cfg.Shards))
	}
	h.PersistRange(curBase, cfg.Threads*pmem.WordsPerLine)
	h.Store(meta+cfgShard, uint64(cfg.Shards))
	h.Store(meta+cfgThrd, uint64(cfg.Threads))
	h.Store(meta+cfgCur, uint64(curBase))
	h.Store(meta+cfgMagic, magicSharded|typ.Code<<32)
	h.Persist(meta)
	h.SetRoot(rootSlot, meta)
	return q, nil
}

// Attach reconstructs the handle of an existing sharded front from heap
// root slot rootSlot. The type must match the one the front was built
// with (its code is validated against the persisted metadata) and must
// support re-attachment. The caller must run Recover before resuming
// operations, exactly as with the concrete Attach functions.
func Attach(h *pmem.Heap, rootSlot int, typ dss.Type) (*Front, error) {
	if typ.Attach == nil {
		return nil, fmt.Errorf("sharded: type %s does not support re-attachment", typ.Name)
	}
	meta := h.Root(rootSlot)
	if meta == 0 {
		return nil, fmt.Errorf("sharded: root slot %d is empty", rootSlot)
	}
	magic := h.Load(meta + cfgMagic)
	if magic&(1<<32-1) != magicSharded {
		return nil, fmt.Errorf("sharded: root slot %d does not hold a sharded front", rootSlot)
	}
	if code := magic >> 32; code != typ.Code {
		return nil, fmt.Errorf("sharded: root slot %d holds type code %d, not %s (%d)",
			rootSlot, code, typ.Name, typ.Code)
	}
	shards := int(h.Load(meta + cfgShard))
	threads := int(h.Load(meta + cfgThrd))
	slots := typ.RootSlots
	if slots < 1 {
		slots = 1
	}
	if shards < 1 || rootSlot+1+shards*slots > pmem.NumRoots || threads < 1 || threads > 1<<16 {
		return nil, fmt.Errorf("sharded: corrupt config (%d shards, %d threads)", shards, threads)
	}
	q := &Front{
		h: h, typ: typ, threads: threads,
		curBase: pmem.Addr(h.Load(meta + cfgCur)),
		byKey:   typ.KeyRouted,
		last:    make([]dss.Kind, threads),
		pendTag: make([]uint64, threads),
		tagged:  make([]bool, threads),
	}
	for i := 0; i < shards; i++ {
		sh, err := typ.Attach(h, rootSlot+1+i*slots, dss.Config{Threads: threads})
		if err != nil {
			return nil, fmt.Errorf("sharded: %s shard %d: %w", typ.Name, i, err)
		}
		q.shards = append(q.shards, sh)
	}
	return q, nil
}

// Shards reports the shard count.
func (q *Front) Shards() int { return len(q.shards) }

// Shard returns the i'th underlying object (test access).
func (q *Front) Shard(i int) dss.Object { return q.shards[i] }

// Type reports the object type the front was built over.
func (q *Front) Type() dss.Type { return q.typ }

// Threads reports the number of processes the front was built for.
func (q *Front) Threads() int { return q.threads }

// Heap returns the underlying heap.
func (q *Front) Heap() *pmem.Heap { return q.h }

// SetTracer installs t (nil to remove). Not safe to call concurrently
// with operations.
func (q *Front) SetTracer(t Tracer) { q.tracer = t }

// SetObs attaches an observability sink (nil to remove) and sizes its
// per-shard counter vectors. Not safe to call concurrently with
// operations.
func (q *Front) SetObs(s *obs.Sink) {
	q.obs = s
	s.SetShards(len(q.shards))
}

func (q *Front) cursorAddr(tid int) pmem.Addr {
	return q.curBase + pmem.Addr(tid*pmem.WordsPerLine)
}

// moveRoute points tid's persisted route at shard s and advances the
// round-robin hint word rr, with a single cursor-line persist; it then
// withdraws the stale prepared operation, if any, from the previously
// routed shard. The shard's own X[tid] must already be persisted: X
// first, cursor second is what makes a crash between the two resolve as
// "the new prep never happened" rather than as a dangling route.
func (q *Front) moveRoute(tid, s, rr int) {
	cur := q.cursorAddr(tid)
	prev := q.h.Load(cur + curRoute)
	q.h.Store(cur+curRoute, uint64(s+1))
	q.h.Store(cur+pmem.Addr(rr), uint64((s+1)%len(q.shards)))
	if q.tagged[tid] {
		// A PrepTagged rides its tag on the cursor persist: tag and route
		// land in one line, so the line-atomic crash adversary commits or
		// drops them together. The tag store comes LAST: a crash between
		// the stores can then only adopt {new route, old tag} — resolve
		// reports the fresh, never-acknowledged prep under the old tag,
		// which the owner settles as absent (legal: the prep vanishes
		// unexecuted). The reverse tear, {old route, new tag}, would marry
		// the new tag to the PREVIOUS operation's executed record and fake
		// an execution that never happened. Later moveRoutes of the same
		// operation (a remove scan's hops) leave the already-persisted tag
		// word alone.
		q.h.Store(cur+curTag, q.pendTag[tid])
		q.tagged[tid] = false
	}
	q.h.Persist(cur)
	if p := int(prev) - 1; p >= 0 && p != s {
		q.shards[p].Abandon(tid)
		q.obs.ShardAdd(p, obs.ShardAbandons)
	}
}

// KeyShard is the key-hash shard choice of route-by-key mode: a
// Fibonacci-hashed placement, stable across runs and processes (it is
// derived from the key alone, so clients, servers and benches agree on
// where a key lives without coordination).
func KeyShard(key uint64, shards int) int {
	return int(key * 0x9E3779B97F4A7C15 >> 32 % uint64(shards))
}

// Prep dispatches a detectable prep to the next shard in tid's
// round-robin order for the operation's kind — or, in route-by-key mode,
// to the shard the operation's key hashes to (Axiom 1 for the
// composition).
func (q *Front) Prep(tid int, op dss.Op) error {
	if q.byKey {
		s := KeyShard(op.Key, len(q.shards))
		if q.tracer != nil {
			q.tracer.OpBegin(s, tid, spec.PrepOp(q.typ.SpecOp(op)))
		}
		if err := q.shards[s].Prep(tid, op); err != nil {
			return err
		}
		q.obs.ShardAdd(s, obs.ShardPreps)
		q.moveRoute(tid, s, curInsRR)
		if q.tracer != nil {
			q.tracer.OpEnd(s, tid, spec.BottomResp())
		}
		q.last[tid] = op.Kind
		return nil
	}
	if op.Kind == dss.Remove {
		q.prepRemoveOn(tid, int(q.h.Load(q.cursorAddr(tid)+curRemRR))%len(q.shards))
		q.last[tid] = dss.Remove
		return nil
	}
	s := int(q.h.Load(q.cursorAddr(tid)+curInsRR)) % len(q.shards)
	if q.tracer != nil {
		q.tracer.OpBegin(s, tid, spec.PrepOp(q.typ.SpecOp(op)))
	}
	if err := q.shards[s].Prep(tid, op); err != nil {
		return err
	}
	q.obs.ShardAdd(s, obs.ShardPreps)
	q.moveRoute(tid, s, curInsRR)
	if q.tracer != nil {
		q.tracer.OpEnd(s, tid, spec.BottomResp())
	}
	q.last[tid] = dss.Insert
	return nil
}

// PrepTagged is Prep with the operation tag (Section 2.1's auxiliary
// argument) persisted alongside the route: the tag is stored into the
// cursor line immediately before the route word, so the prep's single
// cursor persist commits both atomically (the crash adversary settles
// whole lines). ResolvedTag reads it back in any later generation, which
// is what lets tag-keyed retry clients (mp.RetryClient, mp.ClusterClient)
// settle ambiguous outcomes across crashes without the universal
// construction. The untagged Prep path stores nothing extra.
func (q *Front) PrepTagged(tid int, op dss.Op, tag uint64) error {
	q.pendTag[tid] = tag
	q.tagged[tid] = true
	if err := q.Prep(tid, op); err != nil {
		q.tagged[tid] = false
		return err
	}
	return nil
}

// ResolvedTag reports the tag persisted with tid's routed operation (0 if
// the route was never written by a PrepTagged). Meaningful only while
// Resolve reports an operation: an abandoned route leaves the stale tag
// word behind, but Resolve then reports no operation at all.
func (q *Front) ResolvedTag(tid int) uint64 {
	return q.h.Load(q.cursorAddr(tid) + curTag)
}

// prepRemoveOn runs a shard-level remove prep on shard s and routes tid
// there, advancing the remove round-robin hint.
func (q *Front) prepRemoveOn(tid, s int) {
	if q.tracer != nil {
		q.tracer.OpBegin(s, tid, spec.PrepOp(q.typ.SpecOp(dss.Op{Kind: dss.Remove})))
	}
	// The shard-level remove prep cannot fail (it only writes X[tid]).
	_ = q.shards[s].Prep(tid, dss.Op{Kind: dss.Remove})
	q.obs.ShardAdd(s, obs.ShardPreps)
	q.moveRoute(tid, s, curRemRR)
	if q.tracer != nil {
		q.tracer.OpEnd(s, tid, spec.BottomResp())
	}
}

// Exec executes the operation prepared by tid's last Prep on whichever
// shard it was routed to (Axiom 2 for the composition). For a remove, if
// the routed shard is empty it re-prepares on the next shard and
// retries, scanning at most one full cycle; EMPTY is returned only after
// every shard reported empty during the scan (the relaxed emptiness of
// the composition — see DESIGN.md). Each retry is a fresh shard-level
// prep/exec pair, so the persisted route always names the shard whose
// X[tid] records this operation's effect, and a crash anywhere in the
// scan resolves to exactly-once semantics: values claimed by an
// interrupted exec are recovered by that shard's resolve, and abandoned
// intermediate EMPTY observations removed nothing from any shard.
func (q *Front) Exec(tid int) (dss.Resp, error) {
	r := q.h.Load(q.cursorAddr(tid) + curRoute)
	if r == 0 {
		return dss.Resp{}, nil
	}
	s := int(r) - 1
	if q.last[tid] != dss.Remove {
		if q.tracer != nil {
			op, _, _ := q.shards[s].Resolve(tid)
			q.tracer.OpBegin(s, tid, spec.ExecOp(q.typ.SpecOp(op)))
		}
		resp, err := q.shards[s].Exec(tid)
		if q.tracer != nil {
			q.tracer.OpEnd(s, tid, dss.SpecResp(resp))
		}
		return resp, err
	}
	n := len(q.shards)
	for i := 0; ; i++ {
		if q.tracer != nil {
			q.tracer.OpBegin(s, tid, spec.ExecOp(q.typ.SpecOp(dss.Op{Kind: dss.Remove})))
		}
		resp, err := q.shards[s].Exec(tid)
		if err != nil {
			return dss.Resp{}, err
		}
		if resp.Kind == dss.Val {
			if q.tracer != nil {
				q.tracer.OpEnd(s, tid, spec.ValResp(resp.Val))
			}
			return resp, nil
		}
		if q.tracer != nil {
			q.tracer.OpEnd(s, tid, spec.EmptyResp())
		}
		if i == n-1 {
			return dss.Resp{Kind: dss.Empty}, nil
		}
		s = (s + 1) % n
		q.obs.ShardAdd(s, obs.ShardScanRetries)
		q.prepRemoveOn(tid, s)
	}
}

// Resolve reports tid's most recently prepared detectable operation by
// delegating to the shard the persisted route names (Axiom 3 for the
// composition: exactly one shard holds the operation's record).
func (q *Front) Resolve(tid int) (dss.Op, dss.Resp, bool) {
	r := q.h.Load(q.cursorAddr(tid) + curRoute)
	if r == 0 {
		return dss.Op{}, dss.Resp{}, false
	}
	return q.shards[r-1].Resolve(tid)
}

// Route reports the shard holding tid's most recently prepared
// detectable operation, or -1 if none — the persisted cursor the
// composition's Resolve delegates through (test and recovery-audit
// access).
func (q *Front) Route(tid int) int {
	return int(q.h.Load(q.cursorAddr(tid)+curRoute)) - 1
}

// Invoke applies op non-detectably (Axiom 4 for the composition):
// round-robin dispatch with a volatile cursor update (the hint needs no
// flush — after a crash the round-robin order restarts from the last
// persisted hint, which affects only load spread, never safety). A
// remove scans one full cycle from the cursor, returning EMPTY only if
// every shard reported empty.
func (q *Front) Invoke(tid int, op dss.Op) (dss.Resp, error) {
	if q.byKey {
		// The key names its shard; no cursor movement, no scan — the
		// routed shard is the sole authority for the key, including for
		// its absence.
		return q.shards[KeyShard(op.Key, len(q.shards))].Invoke(tid, op)
	}
	cur := q.cursorAddr(tid)
	if op.Kind == dss.Remove {
		s := int(q.h.Load(cur+curRemRR)) % len(q.shards)
		for i := 0; i < len(q.shards); i++ {
			resp, err := q.shards[s].Invoke(tid, op)
			if err != nil {
				return dss.Resp{}, err
			}
			if resp.Kind == dss.Val {
				q.h.Store(cur+curRemRR, uint64((s+1)%len(q.shards)))
				return resp, nil
			}
			s = (s + 1) % len(q.shards)
		}
		return dss.Resp{Kind: dss.Empty}, nil
	}
	s := int(q.h.Load(cur+curInsRR)) % len(q.shards)
	resp, err := q.shards[s].Invoke(tid, op)
	if err != nil {
		return dss.Resp{}, err
	}
	q.h.Store(cur+curInsRR, uint64((s+1)%len(q.shards)))
	return resp, nil
}

// Abandon withdraws tid's prepared-but-unexecuted operation from the
// composition: the persisted route is cleared first (so no crash can
// resurrect the intent through it), then the routed shard's own Abandon
// reclaims the shard-level state.
func (q *Front) Abandon(tid int) {
	cur := q.cursorAddr(tid)
	r := q.h.Load(cur + curRoute)
	if r == 0 {
		return
	}
	q.h.Store(cur+curRoute, 0)
	q.h.Persist(cur)
	q.shards[r-1].Abandon(tid)
	q.obs.ShardAdd(int(r)-1, obs.ShardAbandons)
	q.last[tid] = dss.None
}

// Recover restores the composition after a crash: the single-threaded
// per-shard recovery procedure runs across shards in parallel (shards
// share nothing but the heap, whose primitives are atomic), then stale
// prepared operations on non-routed shards — preps that were superseded
// before the crash but whose eager Abandon never ran — are withdrawn
// deterministically, so post-recovery state depends only on the
// persisted image, never on where the crash interrupted cleanup.
// Single-threaded and idempotent, like the per-shard procedures.
func (q *Front) Recover() {
	var wg sync.WaitGroup
	for _, sh := range q.shards {
		wg.Add(1)
		go func(sh dss.Object) {
			defer wg.Done()
			sh.Recover()
		}(sh)
	}
	wg.Wait()
	for tid := 0; tid < q.threads; tid++ {
		r := int(q.h.Load(q.cursorAddr(tid) + curRoute))
		for i, sh := range q.shards {
			if i != r-1 {
				// Count only withdrawals of real stale preps, not the
				// unconditional cleanup calls (the Resolve probe runs only
				// when observed — an unobserved Recover stays step-identical).
				if q.obs.Enabled() {
					if _, _, ok := sh.Resolve(tid); ok {
						q.obs.ShardAdd(i, obs.ShardAbandons)
					}
				}
				sh.Abandon(tid)
			}
		}
	}
	q.refreshHints()
}

// ResetVolatile rebuilds the volatile companions of every shard and the
// front's own dispatch hints without touching persistent state (the
// full-system crash of the conformance tests).
func (q *Front) ResetVolatile() {
	for _, sh := range q.shards {
		sh.ResetVolatile()
	}
	q.refreshHints()
}

// refreshHints re-derives the front's volatile dispatch hints from the
// persisted routes (recovery-time only; never on the measured hot path).
// Pending tag state is volatile and dies with the crash: a PrepTagged the
// crash interrupted before its cursor persist resolves as "never
// happened", so its unconsumed tag must not leak into the next prep.
func (q *Front) refreshHints() {
	for tid := 0; tid < q.threads; tid++ {
		q.tagged[tid] = false
		q.pendTag[tid] = 0
		r := q.h.Load(q.cursorAddr(tid) + curRoute)
		if r == 0 {
			q.last[tid] = dss.None
			continue
		}
		if op, _, ok := q.shards[r-1].Resolve(tid); ok {
			q.last[tid] = op.Kind
		} else {
			q.last[tid] = dss.None
		}
	}
}
