// Package sharded composes N independent DSS queues into a single
// detectable queue front-end, multiplying the head/tail CAS bandwidth that
// caps the flat Figure-5a curves while preserving the paper's per-process
// recovery contract.
//
// Semantics: the composition is per-shard FIFO and globally k-relaxed
// (k bounded by the shard count times the in-flight window): values
// dispatched round-robin to shard queues dequeue in per-shard FIFO order,
// but values resident on different shards may overtake each other
// globally. Crucially, detectability is NOT relaxed: every individual
// operation lands on exactly one shard, that shard's history is strictly
// linearizable w.r.t. D⟨queue⟩ (Theorem 1 applies per shard unchanged),
// and the persisted per-process route cursor names the shard holding the
// process's most recent prepared operation — so Resolve after a crash
// delegates to exactly one per-shard resolve and the exactly-once
// guarantee carries over to the composition. See DESIGN.md for the full
// argument and for why the cursor needs no CAS (it is single-owner,
// per-process state, like X[p] itself).
//
// Cursor persistence protocol: a detectable prep first runs the shard
// prep (which persists the shard's X[p]), then persists the cursor line
// (route + round-robin hints) with a single flush. A crash between the
// two leaves the route pointing at the previous shard, so the new prep
// resolves as "never happened" — a legal outcome for an operation whose
// prep had not returned. The stale X entry on the previous shard is
// withdrawn via (*core.Queue).AbandonPrep either eagerly (on the next
// prep that moves away from it) or deterministically during Recover.
package sharded

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// Cursor line layout: one cache line per process, three words.
const (
	curRoute = 0 // 0 = no prepared op; s+1 = prepared on shard s
	curEnqRR = 1 // next shard for an enqueue (round-robin hint)
	curDeqRR = 2 // next shard for a dequeue scan (round-robin hint)
)

// Meta line layout.
const (
	cfgMagic = 0
	cfgShard = 1
	cfgThrd  = 2
	cfgCur   = 3

	magicSharded = 0x4453_5348 // "DSSH"
)

// Config parameterizes New.
type Config struct {
	// Shards is the number of underlying DSS queues.
	Shards int
	// Threads is the number of processes (shared by every shard).
	Threads int
	// NodesPerThread and ExtraNodes size each shard's node pool (they are
	// per-shard figures, passed to core.Config unchanged).
	NodesPerThread int
	ExtraNodes     int
}

// Tracer observes shard-level operation boundaries. It exists for
// conformance tests: a sharded operation may touch several shards (a
// dequeue scans), and the tracer reports each shard-level sub-operation
// with its D⟨queue⟩ op and response so per-shard histories can be
// recorded and checked. Production code leaves it nil.
type Tracer interface {
	// OpBegin marks the invocation of op on shard by process tid.
	OpBegin(shard, tid int, op spec.Op)
	// OpEnd marks its return with resp.
	OpEnd(shard, tid int, resp spec.Resp)
}

// Queue is the sharded detectable queue.
type Queue struct {
	h       *pmem.Heap
	shards  []*core.Queue
	threads int
	curBase pmem.Addr
	tracer  Tracer
}

// New builds a sharded queue in h. It claims root slots rootSlot (its own
// metadata) through rootSlot+cfg.Shards (one per shard).
func New(h *pmem.Heap, rootSlot int, cfg Config) (*Queue, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("sharded: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Threads < 1 {
		return nil, fmt.Errorf("sharded: need at least 1 thread, got %d", cfg.Threads)
	}
	if rootSlot < 0 || rootSlot+1+cfg.Shards > pmem.NumRoots {
		return nil, fmt.Errorf("sharded: %d shards from root slot %d exceed the %d root slots",
			cfg.Shards, rootSlot, pmem.NumRoots)
	}
	meta, err := h.Alloc(pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("sharded: meta: %w", err)
	}
	curBase, err := h.Alloc(cfg.Threads * pmem.WordsPerLine)
	if err != nil {
		return nil, fmt.Errorf("sharded: cursors: %w", err)
	}
	q := &Queue{h: h, threads: cfg.Threads, curBase: curBase}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := core.New(h, rootSlot+1+i, core.Config{
			Threads:        cfg.Threads,
			NodesPerThread: cfg.NodesPerThread,
			ExtraNodes:     cfg.ExtraNodes,
		})
		if err != nil {
			return nil, fmt.Errorf("sharded: shard %d: %w", i, err)
		}
		q.shards = append(q.shards, sh)
	}
	// Spread the initial round-robin hints so a uniform thread population
	// starts uniformly distributed over shards.
	for tid := 0; tid < cfg.Threads; tid++ {
		cur := q.cursorAddr(tid)
		h.Store(cur+curRoute, 0)
		h.Store(cur+curEnqRR, uint64(tid%cfg.Shards))
		h.Store(cur+curDeqRR, uint64(tid%cfg.Shards))
	}
	h.PersistRange(curBase, cfg.Threads*pmem.WordsPerLine)
	h.Store(meta+cfgShard, uint64(cfg.Shards))
	h.Store(meta+cfgThrd, uint64(cfg.Threads))
	h.Store(meta+cfgCur, uint64(curBase))
	h.Store(meta+cfgMagic, magicSharded)
	h.Persist(meta)
	h.SetRoot(rootSlot, meta)
	return q, nil
}

// Attach reconstructs the handle of an existing sharded queue from heap
// root slot rootSlot. The caller must run Recover before resuming
// operations, exactly as with core.Attach.
func Attach(h *pmem.Heap, rootSlot int) (*Queue, error) {
	meta := h.Root(rootSlot)
	if meta == 0 {
		return nil, fmt.Errorf("sharded: root slot %d is empty", rootSlot)
	}
	if h.Load(meta+cfgMagic) != magicSharded {
		return nil, fmt.Errorf("sharded: root slot %d does not hold a sharded queue", rootSlot)
	}
	shards := int(h.Load(meta + cfgShard))
	threads := int(h.Load(meta + cfgThrd))
	if shards < 1 || rootSlot+1+shards > pmem.NumRoots || threads < 1 || threads > 1<<16 {
		return nil, fmt.Errorf("sharded: corrupt config (%d shards, %d threads)", shards, threads)
	}
	q := &Queue{h: h, threads: threads, curBase: pmem.Addr(h.Load(meta + cfgCur))}
	for i := 0; i < shards; i++ {
		sh, err := core.Attach(h, rootSlot+1+i)
		if err != nil {
			return nil, fmt.Errorf("sharded: shard %d: %w", i, err)
		}
		q.shards = append(q.shards, sh)
	}
	return q, nil
}

// Shards reports the shard count.
func (q *Queue) Shards() int { return len(q.shards) }

// Shard returns the i'th underlying DSS queue (test access).
func (q *Queue) Shard(i int) *core.Queue { return q.shards[i] }

// Threads reports the number of processes the queue was built for.
func (q *Queue) Threads() int { return q.threads }

// Heap returns the underlying heap.
func (q *Queue) Heap() *pmem.Heap { return q.h }

// SetTracer installs t (nil to remove). Not safe to call concurrently
// with operations.
func (q *Queue) SetTracer(t Tracer) { q.tracer = t }

func (q *Queue) cursorAddr(tid int) pmem.Addr {
	return q.curBase + pmem.Addr(tid*pmem.WordsPerLine)
}

// moveRoute points tid's persisted route at shard s and advances the
// round-robin hint word rr, with a single cursor-line persist; it then
// withdraws the stale prepared operation, if any, from the previously
// routed shard. The shard's own X[tid] must already be persisted: X
// first, cursor second is what makes a crash between the two resolve as
// "the new prep never happened" rather than as a dangling route.
func (q *Queue) moveRoute(tid, s, rr int) {
	cur := q.cursorAddr(tid)
	prev := q.h.Load(cur + curRoute)
	q.h.Store(cur+curRoute, uint64(s+1))
	q.h.Store(cur+pmem.Addr(rr), uint64((s+1)%len(q.shards)))
	q.h.Persist(cur)
	if p := int(prev) - 1; p >= 0 && p != s {
		q.shards[p].AbandonPrep(tid)
	}
}

// PrepEnqueue dispatches a detectable prep-enqueue to the next shard in
// tid's round-robin order.
func (q *Queue) PrepEnqueue(tid int, v uint64) error {
	s := int(q.h.Load(q.cursorAddr(tid)+curEnqRR)) % len(q.shards)
	if q.tracer != nil {
		q.tracer.OpBegin(s, tid, spec.PrepOp(spec.Enqueue(v)))
	}
	if err := q.shards[s].PrepEnqueue(tid, v); err != nil {
		return err
	}
	q.moveRoute(tid, s, curEnqRR)
	if q.tracer != nil {
		q.tracer.OpEnd(s, tid, spec.BottomResp())
	}
	return nil
}

// ExecEnqueue executes the enqueue prepared by the last PrepEnqueue on
// whichever shard it was routed to.
func (q *Queue) ExecEnqueue(tid int) {
	r := q.h.Load(q.cursorAddr(tid) + curRoute)
	if r == 0 {
		return
	}
	s := int(r) - 1
	if q.tracer != nil {
		q.tracer.OpBegin(s, tid, spec.ExecOp(spec.Enqueue(q.shards[s].Resolve(tid).Arg)))
	}
	q.shards[s].ExecEnqueue(tid)
	if q.tracer != nil {
		q.tracer.OpEnd(s, tid, spec.AckResp())
	}
}

// prepDeqOn runs a shard-level prep-dequeue on shard s and routes tid
// there, advancing the dequeue round-robin hint.
func (q *Queue) prepDeqOn(tid, s int) {
	if q.tracer != nil {
		q.tracer.OpBegin(s, tid, spec.PrepOp(spec.Dequeue()))
	}
	q.shards[s].PrepDequeue(tid)
	q.moveRoute(tid, s, curDeqRR)
	if q.tracer != nil {
		q.tracer.OpEnd(s, tid, spec.BottomResp())
	}
}

// PrepDequeue dispatches a detectable prep-dequeue to the next shard in
// tid's dequeue round-robin order.
func (q *Queue) PrepDequeue(tid int) {
	q.prepDeqOn(tid, int(q.h.Load(q.cursorAddr(tid)+curDeqRR))%len(q.shards))
}

// ExecDequeue executes the dequeue prepared by the last PrepDequeue. If
// the routed shard is empty it re-prepares on the next shard and retries,
// scanning at most one full cycle; EMPTY is returned only after every
// shard reported empty during the scan (the relaxed emptiness of the
// composition — see DESIGN.md). Each retry is a fresh shard-level
// prep/exec pair, so the persisted route always names the shard whose
// X[tid] records this operation's effect, and a crash anywhere in the
// scan resolves to exactly-once semantics: values claimed by an
// interrupted exec are recovered by that shard's resolve, and abandoned
// intermediate EMPTY observations removed nothing from any shard.
func (q *Queue) ExecDequeue(tid int) (uint64, bool) {
	r := q.h.Load(q.cursorAddr(tid) + curRoute)
	if r == 0 {
		return 0, false
	}
	s := int(r) - 1
	n := len(q.shards)
	for i := 0; ; i++ {
		if q.tracer != nil {
			q.tracer.OpBegin(s, tid, spec.ExecOp(spec.Dequeue()))
		}
		v, ok := q.shards[s].ExecDequeue(tid)
		if ok {
			if q.tracer != nil {
				q.tracer.OpEnd(s, tid, spec.ValResp(v))
			}
			return v, true
		}
		if q.tracer != nil {
			q.tracer.OpEnd(s, tid, spec.EmptyResp())
		}
		if i == n-1 {
			return 0, false
		}
		s = (s + 1) % n
		q.prepDeqOn(tid, s)
	}
}

// Resolve reports tid's most recently prepared detectable operation by
// delegating to the shard the persisted route names (Axiom 3 for the
// composition: exactly one shard holds the operation's record).
func (q *Queue) Resolve(tid int) core.Resolution {
	r := q.h.Load(q.cursorAddr(tid) + curRoute)
	if r == 0 {
		return core.Resolution{Op: core.OpNone}
	}
	return q.shards[r-1].Resolve(tid)
}

// Route reports the shard holding tid's most recently prepared
// detectable operation, or -1 if none — the persisted cursor the
// composition's Resolve delegates through (test and recovery-audit
// access).
func (q *Queue) Route(tid int) int {
	return int(q.h.Load(q.cursorAddr(tid)+curRoute)) - 1
}

// Enqueue is the non-detectable enqueue: round-robin dispatch with a
// volatile cursor update (the hint needs no flush — after a crash the
// round-robin order restarts from the last persisted hint, which affects
// only load spread, never safety).
func (q *Queue) Enqueue(tid int, v uint64) error {
	cur := q.cursorAddr(tid)
	s := int(q.h.Load(cur+curEnqRR)) % len(q.shards)
	if err := q.shards[s].Enqueue(tid, v); err != nil {
		return err
	}
	q.h.Store(cur+curEnqRR, uint64((s+1)%len(q.shards)))
	return nil
}

// Dequeue is the non-detectable dequeue: scan one full cycle from the
// cursor, returning EMPTY only if every shard reported empty.
func (q *Queue) Dequeue(tid int) (uint64, bool) {
	cur := q.cursorAddr(tid)
	s := int(q.h.Load(cur+curDeqRR)) % len(q.shards)
	for i := 0; i < len(q.shards); i++ {
		if v, ok := q.shards[s].Dequeue(tid); ok {
			q.h.Store(cur+curDeqRR, uint64((s+1)%len(q.shards)))
			return v, true
		}
		s = (s + 1) % len(q.shards)
	}
	return 0, false
}

// Recover restores the composition after a crash: the single-threaded
// per-shard recovery procedure of Section 3.2 runs across shards in
// parallel (shards share nothing but the heap, whose primitives are
// atomic), then stale prepared operations on non-routed shards — preps
// that were superseded before the crash but whose eager AbandonPrep never
// ran — are withdrawn deterministically, so post-recovery state depends
// only on the persisted image, never on where the crash interrupted
// cleanup.
func (q *Queue) Recover() {
	var wg sync.WaitGroup
	for _, sh := range q.shards {
		wg.Add(1)
		go func(sh *core.Queue) {
			defer wg.Done()
			sh.Recover()
		}(sh)
	}
	wg.Wait()
	for tid := 0; tid < q.threads; tid++ {
		r := int(q.h.Load(q.cursorAddr(tid) + curRoute))
		for i, sh := range q.shards {
			if i != r-1 {
				sh.AbandonPrep(tid)
			}
		}
	}
}

// ResetVolatile rebuilds the volatile companions of every shard without
// touching persistent state (the full-system crash of the conformance
// tests).
func (q *Queue) ResetVolatile() {
	for _, sh := range q.shards {
		sh.ResetVolatile()
	}
}
