package sharded

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/dss"
	"repro/internal/pmem"
	"repro/internal/spec"
)

func newTestFront(t *testing.T, typ dss.Type, shards, threads int) (*Front, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 18, Mode: pmem.Tracked})
	if err != nil {
		t.Fatalf("pmem.New: %v", err)
	}
	q, err := New(h, 0, typ, Config{Shards: shards, Threads: threads, NodesPerThread: 64, ExtraNodes: 16})
	if err != nil {
		t.Fatalf("sharded.New(%s): %v", typ.Name, err)
	}
	return q, h
}

// conformanceTypes lists the object types the conformance suites run
// over: the same generic front must be correct for FIFO and LIFO shards.
func conformanceTypes() []dss.Type { return []dss.Type{dss.QueueType, dss.StackType} }

// pendingOp is a tracer-observed shard-level invocation awaiting its
// response.
type pendingOp struct {
	shard int
	op    spec.Op
}

// modelTracer runs per-shard D⟨T⟩ models in lockstep with the real
// front: every shard-level operation the tracer observes is applied to
// that shard's model, and the responses must agree exactly. It is the
// sequential-conformance oracle (single-threaded use only).
type modelTracer struct {
	t       *testing.T
	models  []spec.State
	pending map[int]pendingOp
}

func newModelTracer(t *testing.T, typ dss.Type, shards, threads int) *modelTracer {
	m := &modelTracer{t: t, pending: map[int]pendingOp{}}
	for i := 0; i < shards; i++ {
		m.models = append(m.models, spec.Detectable(typ.Model(), threads))
	}
	return m
}

func (m *modelTracer) OpBegin(shard, tid int, op spec.Op) {
	m.pending[tid] = pendingOp{shard, op}
}

func (m *modelTracer) OpEnd(shard, tid int, resp spec.Resp) {
	p, ok := m.pending[tid]
	if !ok || p.shard != shard {
		m.t.Fatalf("tracer: OpEnd(shard %d, tid %d) without matching OpBegin (%+v)", shard, tid, p)
	}
	delete(m.pending, tid)
	next, want, enabled := m.models[shard].Apply(p.op, tid)
	if !enabled {
		m.t.Fatalf("shard %d: %s by tid %d not enabled in the model", shard, p.op, tid)
	}
	if want != resp {
		m.t.Fatalf("shard %d: %s by tid %d responded %s, model says %s", shard, p.op, tid, resp, want)
	}
	m.models[shard] = next
}

// resolveOn applies resolve to shard s's model and returns the response.
func (m *modelTracer) resolveOn(s, tid int) spec.Resp {
	_, resp, _ := m.models[s].Apply(spec.ResolveOp(), tid)
	return resp
}

// TestSequentialConformanceRandom drives a random single-threaded stream
// of detectable operations from several processes through the sharded
// front with the per-shard models in lockstep, checking the composition's
// Resolve against the route shard's model resolve after every operation —
// once per object type.
func TestSequentialConformanceRandom(t *testing.T) {
	const (
		shards  = 3
		threads = 3
		steps   = 400
	)
	for _, typ := range conformanceTypes() {
		typ := typ
		t.Run(typ.Name, func(t *testing.T) {
			q, _ := newTestFront(t, typ, shards, threads)
			m := newModelTracer(t, typ, shards, threads)
			q.SetTracer(m)
			defer q.SetTracer(nil)

			rng := rand.New(rand.NewSource(20260806))
			next := uint64(1)
			for i := 0; i < steps; i++ {
				tid := rng.Intn(threads)
				switch rng.Intn(5) {
				case 0, 1: // detectable insert pair
					if err := q.Prep(tid, insertOf(next)); err != nil {
						t.Fatalf("step %d: Prep insert: %v", i, err)
					}
					next++
					if _, err := q.Exec(tid); err != nil {
						t.Fatalf("step %d: Exec: %v", i, err)
					}
				case 2, 3: // detectable remove pair
					if err := q.Prep(tid, remove); err != nil {
						t.Fatalf("step %d: Prep remove: %v", i, err)
					}
					if _, err := q.Exec(tid); err != nil {
						t.Fatalf("step %d: Exec: %v", i, err)
					}
				case 4: // prep without exec: exercises cross-shard abandonment
					if rng.Intn(2) == 0 {
						if err := q.Prep(tid, insertOf(next)); err != nil {
							t.Fatalf("step %d: Prep insert: %v", i, err)
						}
						next++
					} else {
						if err := q.Prep(tid, remove); err != nil {
							t.Fatalf("step %d: Prep remove: %v", i, err)
						}
					}
				}
				// The composition's resolve must match the route shard's model.
				r := q.Route(tid)
				if r < 0 {
					t.Fatalf("step %d: tid %d has no route after an operation", i, tid)
				}
				op, resp, ok := q.Resolve(tid)
				if got, want := typ.ResolveResp(op, resp, ok), m.resolveOn(r, tid); got != want {
					t.Fatalf("step %d: Resolve(%d) = %s, model (shard %d) says %s", i, tid, got, r, want)
				}
			}

			// Drain every shard against its model's base object.
			q.SetTracer(nil)
			baseRemove := typ.SpecOp(remove)
			for s := 0; s < shards; s++ {
				for {
					resp, err := q.Shard(s).Invoke(0, remove)
					if err != nil {
						t.Fatalf("shard %d: drain: %v", s, err)
					}
					next, want, enabled := m.models[s].Apply(baseRemove, 0)
					if !enabled {
						t.Fatalf("shard %d: model rejected a drain remove", s)
					}
					m.models[s] = next
					if resp.Kind != dss.Val {
						if want.Kind != spec.Empty {
							t.Fatalf("shard %d: object empty but model holds %s", s, want)
						}
						break
					}
					if want.Kind != spec.Val || want.V != resp.Val {
						t.Fatalf("shard %d: drained %d, model says %s", s, resp.Val, want)
					}
				}
			}
		})
	}
}

// recorderTracer fans shard-level operations out to one check.Recorder
// per shard (concurrent use; Recorder is internally synchronized).
type recorderTracer struct {
	recs []*check.Recorder
}

func (r *recorderTracer) OpBegin(shard, tid int, op spec.Op) { r.recs[shard].Begin(tid, op) }
func (r *recorderTracer) OpEnd(shard, tid int, resp spec.Resp) {
	r.recs[shard].End(tid, resp)
}

// TestConcurrentCrashConformancePerShard: concurrent workers drive
// detectable pairs through the sharded front, a crash interrupts them at
// a sampled step under both the DropAll and KeepAll adversaries, recovery
// runs, the composition resolves through the persisted route, every shard
// is drained — and each shard's recorded history must be strictly
// linearizable w.r.t. D⟨T⟩. This is exactly the decomposition DESIGN.md's
// argument rests on: the composition is detectable because each per-shard
// history is. It runs once per object type; the queue path re-attaches a
// fresh handle (QueueType supports Attach), the stack path recovers
// through the surviving handle, so both recovery entries are exercised.
func TestConcurrentCrashConformancePerShard(t *testing.T) {
	const (
		shards  = 2
		threads = 3
		pairs   = 2
	)
	crashSteps := []uint64{3, 7, 13, 21, 35, 55, 89, 144, 233, 377}
	advs := []struct {
		name string
		adv  pmem.Adversary
	}{
		{"DropAll", pmem.DropAll{}},
		{"KeepAll", pmem.KeepAll{}},
	}

	for _, typ := range conformanceTypes() {
		typ := typ
		for _, av := range advs {
			for _, step := range crashSteps {
				t.Run(fmt.Sprintf("%s/%s/step%d", typ.Name, av.name, step), func(t *testing.T) {
					q, h := newTestFront(t, typ, shards, threads)
					recs := make([]*check.Recorder, shards)
					for i := range recs {
						recs[i] = check.NewRecorder()
					}
					q.SetTracer(&recorderTracer{recs})

					h.ArmCrash(step)
					var wg sync.WaitGroup
					for tid := 0; tid < threads; tid++ {
						wg.Add(1)
						go func(tid int) {
							defer wg.Done()
							pmem.RunToCrash(func() {
								for p := 0; p < pairs; p++ {
									v := uint64(100*(tid+1) + p)
									if err := q.Prep(tid, insertOf(v)); err != nil {
										return
									}
									if _, err := q.Exec(tid); err != nil {
										return
									}
									if err := q.Prep(tid, remove); err != nil {
										return
									}
									if _, err := q.Exec(tid); err != nil {
										return
									}
								}
							})
						}(tid)
					}
					wg.Wait()

					if h.Crashed() {
						for i := range recs {
							recs[i].CrashAll()
						}
						h.Crash(av.adv)
						if typ.Attach != nil {
							q2, err := Attach(h, 0, typ)
							if err != nil {
								t.Fatalf("Attach: %v", err)
							}
							q = q2
						} else {
							q.ResetVolatile()
						}
						q.Recover()
					} else {
						h.ArmCrash(0) // workload finished before the crash point
					}
					q.SetTracer(nil)

					// Resolve through the persisted route: exactly one shard
					// holds each process's record.
					for tid := 0; tid < threads; tid++ {
						if s := q.Route(tid); s >= 0 {
							recs[s].Begin(tid, spec.ResolveOp())
							op, resp, ok := q.Resolve(tid)
							recs[s].End(tid, typ.ResolveResp(op, resp, ok))
						}
					}
					// Drain each shard into its own history.
					baseRemove := typ.SpecOp(remove)
					for s := 0; s < shards; s++ {
						for {
							recs[s].Begin(0, baseRemove)
							resp, err := q.Shard(s).Invoke(0, remove)
							if err != nil {
								t.Fatalf("shard %d: drain: %v", s, err)
							}
							if resp.Kind == dss.Val {
								recs[s].End(0, spec.ValResp(resp.Val))
							} else {
								recs[s].End(0, spec.EmptyResp())
								break
							}
						}
					}
					for s := 0; s < shards; s++ {
						hist := recs[s].History()
						d := spec.Detectable(typ.Model(), threads)
						if r := check.StrictlyLinearizable(d, hist); !r.OK {
							t.Fatalf("shard %d history not strictly linearizable:\n%s",
								s, check.FormatHistory(hist))
						}
					}
				})
			}
		}
	}
}
