package sharded

import (
	"fmt"

	"repro/internal/dss"
	"repro/internal/spec"
)

// Wire adapts a Front to the spec-vocabulary service surface the
// message-passing engine (internal/mp) hosts, like dss.Wire — but, as
// with combine.Wire, the operation tag is persisted (PrepTagged rides it
// on the cursor-line persist at zero extra flushes), so a resolve
// reports it across crashes. That makes a sharded front the third object
// family able to serve tag-keyed retry clients (mp.RetryClient) whose
// cross-crash exactly-once discipline compares resolved tags — and it is
// the shard-server building block of mp.Cluster, where every server owns
// an independent sharded front behind its own generation fence.
type Wire struct {
	typ dss.Type
	f   *Front
}

// NewWire binds f (a front over typ objects) to the wire vocabulary of
// typ.
func NewWire(typ dss.Type, f *Front) *Wire {
	return &Wire{typ: typ, f: f}
}

// Front returns the adapted sharded front.
func (w *Wire) Front() *Front { return w.f }

// Prep declares a detectable operation (Axiom 1), persisting op.Tag with
// the routing cursor.
func (w *Wire) Prep(tid int, op spec.Op) error {
	dop, ok := w.typ.FromSpec(op)
	if !ok {
		return fmt.Errorf("sharded: %s is not a %s operation", op, w.typ.Name)
	}
	return w.f.PrepTagged(tid, dop, op.Tag)
}

// Exec applies tid's prepared operation (Axiom 2).
func (w *Wire) Exec(tid int) (spec.Resp, error) {
	resp, err := w.f.Exec(tid)
	if err != nil {
		return spec.Resp{}, err
	}
	return dss.SpecResp(resp), nil
}

// Resolve reports (A[p], R[p]) (Axiom 3), with the tag read back from
// the persisted cursor — valid in any generation.
func (w *Wire) Resolve(tid int) spec.Resp {
	op, resp, ok := w.f.Resolve(tid)
	if !ok {
		return spec.PairResp(false, spec.Op{}, spec.BottomResp())
	}
	sop := w.typ.SpecOp(op)
	sop.Tag = w.f.ResolvedTag(tid)
	return spec.PairResp(true, sop, dss.SpecResp(resp))
}

// Invoke applies op non-detectably (Axiom 4).
func (w *Wire) Invoke(tid int, op spec.Op) (spec.Resp, error) {
	dop, ok := w.typ.FromSpec(op)
	if !ok {
		return spec.Resp{}, fmt.Errorf("sharded: %s is not a %s operation", op, w.typ.Name)
	}
	resp, err := w.f.Invoke(tid, dop)
	if err != nil {
		return spec.Resp{}, err
	}
	return dss.SpecResp(resp), nil
}

// Recover runs the front's recovery procedure (parallel per-shard
// recovery plus stale-prep withdrawal).
func (w *Wire) Recover() { w.f.Recover() }
