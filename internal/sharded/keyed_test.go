package sharded

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/dss"
	"repro/internal/pmem"
	"repro/internal/spec"
)

// keyedOp draws a random hash-map operation over a small key universe;
// next supplies globally unique put values so histories are auditable.
func keyedOp(rng *rand.Rand, next *uint64) dss.Op {
	key := uint64(rng.Intn(10) + 1)
	switch rng.Intn(4) {
	case 0:
		*next++
		return dss.Op{Kind: dss.Put, Key: key, Arg: *next}
	case 1:
		return dss.Op{Kind: dss.Get, Key: key}
	case 2:
		return dss.Op{Kind: dss.Delete, Key: key}
	default:
		*next++
		return dss.Op{Kind: dss.MapCAS, Key: key, Arg: spec.PackCAS(uint64(rng.Intn(8)), *next)}
	}
}

// TestKeyedRoutePlacement: in route-by-key mode every prep must land on
// (and the persisted cursor must name) the shard the key hashes to —
// content-addressed placement, not round-robin.
func TestKeyedRoutePlacement(t *testing.T) {
	const shards = 4
	q, _ := newTestFront(t, dss.MapType, shards, 2)
	for key := uint64(1); key <= 32; key++ {
		if err := q.Prep(0, dss.Op{Kind: dss.Put, Key: key, Arg: key * 10}); err != nil {
			t.Fatal(err)
		}
		if got, want := q.Route(0), KeyShard(key, shards); got != want {
			t.Fatalf("key %d routed to shard %d, want KeyShard = %d", key, got, want)
		}
		if _, err := q.Exec(0); err != nil {
			t.Fatal(err)
		}
	}
	// Every key must be found on its hash shard and nowhere else.
	for key := uint64(1); key <= 32; key++ {
		for s := 0; s < shards; s++ {
			resp, err := q.Shard(s).Invoke(0, dss.Op{Kind: dss.Get, Key: key})
			if err != nil {
				t.Fatal(err)
			}
			if s == KeyShard(key, shards) {
				if resp.Kind != dss.Val || resp.Val != key*10 {
					t.Fatalf("key %d missing from its hash shard %d: %+v", key, s, resp)
				}
			} else if resp.Kind == dss.Val {
				t.Fatalf("key %d leaked onto shard %d", key, s)
			}
		}
	}
}

// TestSequentialConformanceKeyed is the route-by-key analogue of
// TestSequentialConformanceRandom: a random single-threaded stream of
// detectable map operations through the sharded front with per-shard
// D⟨map⟩ models in lockstep. Because routing is by key, the composition
// here is the exact sequential map — the per-shard models agreeing is
// equivalent to one global model agreeing.
func TestSequentialConformanceKeyed(t *testing.T) {
	const (
		shards  = 3
		threads = 3
		steps   = 400
	)
	typ := dss.MapType
	q, _ := newTestFront(t, typ, shards, threads)
	m := newModelTracer(t, typ, shards, threads)
	q.SetTracer(m)
	defer q.SetTracer(nil)

	rng := rand.New(rand.NewSource(20260808))
	next := uint64(1000)
	for i := 0; i < steps; i++ {
		tid := rng.Intn(threads)
		op := keyedOp(rng, &next)
		if err := q.Prep(tid, op); err != nil {
			t.Fatalf("step %d: Prep %v: %v", i, op.Kind, err)
		}
		if rng.Intn(5) != 4 { // leave some preps unexecuted (cross-shard abandonment)
			if _, err := q.Exec(tid); err != nil {
				t.Fatalf("step %d: Exec: %v", i, err)
			}
		}
		r := q.Route(tid)
		if r != KeyShard(op.Key, shards) {
			t.Fatalf("step %d: tid %d routed to %d, want %d", i, tid, r, KeyShard(op.Key, shards))
		}
		op2, resp, ok := q.Resolve(tid)
		if got, want := typ.ResolveResp(op2, resp, ok), m.resolveOn(r, tid); got != want {
			t.Fatalf("step %d: Resolve(%d) = %s, model (shard %d) says %s", i, tid, got, r, want)
		}
	}

	// Audit the final contents key by key against the per-shard models.
	q.SetTracer(nil)
	for key := uint64(1); key <= 10; key++ {
		s := KeyShard(key, shards)
		resp, err := q.Invoke(0, dss.Op{Kind: dss.Get, Key: key})
		if err != nil {
			t.Fatal(err)
		}
		next, want, enabled := m.models[s].Apply(spec.Get(key), 0)
		if !enabled {
			t.Fatalf("model rejected get(%d)", key)
		}
		m.models[s] = next
		if got := dss.SpecResp(resp); got != want {
			t.Fatalf("key %d: front says %s, model says %s", key, got, want)
		}
	}
}

// TestKeyedCrashConformancePerShard is the route-by-key analogue of
// TestConcurrentCrashConformancePerShard: concurrent workers drive
// detectable map operations through the sharded front, a crash
// interrupts them, recovery runs (through Attach — MapType supports
// re-attachment), the composition resolves through the persisted route,
// every key is audited on its hash shard — and each shard's recorded
// history must be strictly linearizable w.r.t. D⟨map⟩.
func TestKeyedCrashConformancePerShard(t *testing.T) {
	const (
		shards  = 2
		threads = 3
		ops     = 6
		keys    = 8
	)
	crashSteps := []uint64{3, 7, 13, 21, 35, 55, 89, 144, 233, 377}
	advs := []struct {
		name string
		adv  pmem.Adversary
	}{
		{"DropAll", pmem.DropAll{}},
		{"KeepAll", pmem.KeepAll{}},
	}
	typ := dss.MapType

	for _, av := range advs {
		for _, step := range crashSteps {
			t.Run(fmt.Sprintf("%s/step%d", av.name, step), func(t *testing.T) {
				q, h := newTestFront(t, typ, shards, threads)
				recs := make([]*check.Recorder, shards)
				for i := range recs {
					recs[i] = check.NewRecorder()
				}
				q.SetTracer(&recorderTracer{recs})

				h.ArmCrash(step)
				var wg sync.WaitGroup
				for tid := 0; tid < threads; tid++ {
					wg.Add(1)
					go func(tid int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(1000*step) + int64(tid)))
						next := uint64(1_000_000 * (tid + 1))
						pmem.RunToCrash(func() {
							for p := 0; p < ops; p++ {
								op := keyedOp(rng, &next)
								op.Key = op.Key%keys + 1
								if err := q.Prep(tid, op); err != nil {
									return
								}
								if _, err := q.Exec(tid); err != nil {
									return
								}
							}
						})
					}(tid)
				}
				wg.Wait()

				if h.Crashed() {
					for i := range recs {
						recs[i].CrashAll()
					}
					h.Crash(av.adv)
					q2, err := Attach(h, 0, typ)
					if err != nil {
						t.Fatalf("Attach: %v", err)
					}
					q = q2
					q.Recover()
				} else {
					h.ArmCrash(0)
				}
				q.SetTracer(nil)

				// Resolve through the persisted route: exactly one shard
				// holds each process's record.
				for tid := 0; tid < threads; tid++ {
					if s := q.Route(tid); s >= 0 {
						recs[s].Begin(tid, spec.ResolveOp())
						op, resp, ok := q.Resolve(tid)
						recs[s].End(tid, typ.ResolveResp(op, resp, ok))
					}
				}
				// Audit every key on its hash shard.
				for key := uint64(1); key <= keys; key++ {
					s := KeyShard(key, shards)
					recs[s].Begin(0, spec.Get(key))
					resp, err := q.Invoke(0, dss.Op{Kind: dss.Get, Key: key})
					if err != nil {
						t.Fatalf("get(%d): %v", key, err)
					}
					recs[s].End(0, dss.SpecResp(resp))
				}
				for s := 0; s < shards; s++ {
					hist := recs[s].History()
					d := spec.Detectable(typ.Model(), threads)
					if r := check.StrictlyLinearizable(d, hist); !r.OK {
						t.Fatalf("shard %d history not strictly linearizable:\n%s",
							s, check.FormatHistory(hist))
					}
				}
			})
		}
	}
}
