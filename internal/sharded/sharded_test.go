package sharded

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/pmem"
)

func newTestQueue(t *testing.T, shards, threads int) (*Queue, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 18, Mode: pmem.Tracked})
	if err != nil {
		t.Fatalf("pmem.New: %v", err)
	}
	q, err := New(h, 0, Config{Shards: shards, Threads: threads, NodesPerThread: 64, ExtraNodes: 16})
	if err != nil {
		t.Fatalf("sharded.New: %v", err)
	}
	return q, h
}

// drainAll empties the queue non-detectably and returns the values sorted
// (global order across shards is relaxed, so only the multiset is stable).
func drainAll(t *testing.T, q *Queue, tid int) []uint64 {
	t.Helper()
	var out []uint64
	for i := 0; i < 100_000; i++ {
		v, ok := q.Dequeue(tid)
		if !ok {
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		out = append(out, v)
	}
	t.Fatal("drain did not terminate; queue corrupted?")
	return nil
}

func TestNewValidation(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
	if _, err := New(h, 0, Config{Shards: 0, Threads: 1, NodesPerThread: 4, ExtraNodes: 1}); err == nil {
		t.Fatal("accepted zero shards")
	}
	if _, err := New(h, 0, Config{Shards: 1, Threads: 0, NodesPerThread: 4, ExtraNodes: 1}); err == nil {
		t.Fatal("accepted zero threads")
	}
	if _, err := New(h, 0, Config{Shards: pmem.NumRoots, Threads: 1, NodesPerThread: 4, ExtraNodes: 1}); err == nil {
		t.Fatal("accepted shard count exceeding root slots")
	}
}

func TestNonDetectableRoundTrip(t *testing.T) {
	q, _ := newTestQueue(t, 4, 2)
	var want []uint64
	for v := uint64(1); v <= 20; v++ {
		if err := q.Enqueue(0, v); err != nil {
			t.Fatalf("Enqueue(%d): %v", v, err)
		}
		want = append(want, v)
	}
	got := drainAll(t, q, 1)
	if len(got) != len(want) {
		t.Fatalf("drained %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("multiset mismatch at %d: got %v", i, got)
		}
	}
}

// TestEnqueueSpreadsAcrossShards checks the round-robin dispatch: 4×k
// enqueues from one thread must land k on each of 4 shards.
func TestEnqueueSpreadsAcrossShards(t *testing.T) {
	q, _ := newTestQueue(t, 4, 1)
	const perShard = 5
	for v := uint64(0); v < 4*perShard; v++ {
		if err := q.Enqueue(0, 1000+v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < q.Shards(); i++ {
		n := 0
		for {
			if _, ok := q.Shard(i).Dequeue(0); !ok {
				break
			}
			n++
		}
		if n != perShard {
			t.Fatalf("shard %d holds %d values, want %d", i, n, perShard)
		}
	}
}

// TestPerShardFIFO checks the semantic contract: per-shard order is FIFO
// even though global order is relaxed.
func TestPerShardFIFO(t *testing.T) {
	q, _ := newTestQueue(t, 3, 1)
	const rounds = 7
	for v := uint64(0); v < 3*rounds; v++ {
		if err := q.Enqueue(0, v); err != nil {
			t.Fatal(err)
		}
	}
	// Thread 0's enqRR starts at 0%3 = 0, so value v lands on shard v%3.
	for i := 0; i < 3; i++ {
		var got []uint64
		for {
			v, ok := q.Shard(i).Dequeue(0)
			if !ok {
				break
			}
			got = append(got, v)
		}
		if len(got) != rounds {
			t.Fatalf("shard %d: %d values, want %d", i, len(got), rounds)
		}
		for j := 1; j < len(got); j++ {
			if got[j] <= got[j-1] {
				t.Fatalf("shard %d: FIFO inversion %v", i, got)
			}
		}
	}
}

func TestDetectablePrepExecResolve(t *testing.T) {
	q, _ := newTestQueue(t, 2, 1)

	if err := q.PrepEnqueue(0, 41); err != nil {
		t.Fatal(err)
	}
	if res := q.Resolve(0); res.Op != core.OpEnqueue || res.Executed {
		t.Fatalf("after prep: %+v", res)
	}
	q.ExecEnqueue(0)
	if res := q.Resolve(0); res.Op != core.OpEnqueue || !res.Executed || res.Arg != 41 {
		t.Fatalf("after exec: %+v", res)
	}

	q.PrepDequeue(0)
	if res := q.Resolve(0); res.Op != core.OpDequeue || res.Executed {
		t.Fatalf("after deq prep: %+v", res)
	}
	v, ok := q.ExecDequeue(0)
	if !ok || v != 41 {
		t.Fatalf("ExecDequeue = (%d, %v), want (41, true)", v, ok)
	}
	if res := q.Resolve(0); res.Op != core.OpDequeue || !res.Executed || res.Val != 41 {
		t.Fatalf("after deq exec: %+v", res)
	}
}

// TestDequeueScansPastEmptyShards: with the value sitting on a shard the
// dequeue cursor does not start at, the scan must find it, and EMPTY must
// be reported only on a fully empty queue.
func TestDequeueScansPastEmptyShards(t *testing.T) {
	q, _ := newTestQueue(t, 4, 1)
	// enqRR starts at 0: the single value lands on shard 0. Push deqRR
	// past it so the scan has to wrap.
	if err := q.PrepEnqueue(0, 77); err != nil {
		t.Fatal(err)
	}
	q.ExecEnqueue(0)

	q.PrepDequeue(0) // shard 0 — but drain shard order forward:
	// move the prepared dequeue off the value's shard by executing a
	// scan on an empty region first: re-prep on shard 1 manually.
	q.prepDeqOn(0, 1)
	v, ok := q.ExecDequeue(0)
	if !ok || v != 77 {
		t.Fatalf("scan ExecDequeue = (%d, %v), want (77, true)", v, ok)
	}

	q.PrepDequeue(0)
	if _, ok := q.ExecDequeue(0); ok {
		t.Fatal("dequeue on empty queue returned a value")
	}
	if res := q.Resolve(0); res.Op != core.OpDequeue || !res.Executed || !res.Empty {
		t.Fatalf("resolve after empty dequeue: %+v", res)
	}
}

// TestStalePrepAbandoned: preparing on shard A then (after moving on)
// preparing on shard B must withdraw the unexecuted prep from A — its
// node returns to A's pool and A's X no longer reports an operation.
func TestStalePrepAbandoned(t *testing.T) {
	q, _ := newTestQueue(t, 2, 1)
	if err := q.PrepEnqueue(0, 1); err != nil { // shard 0
		t.Fatal(err)
	}
	free0 := q.Shard(0).FreeNodes()
	if err := q.PrepEnqueue(0, 2); err != nil { // shard 1; abandons shard 0's prep
		t.Fatal(err)
	}
	if got := q.Shard(0).FreeNodes(); got != free0+1 {
		t.Fatalf("shard 0 free nodes = %d, want %d (abandoned node returned)", got, free0+1)
	}
	if res := q.Shard(0).Resolve(0); res.Op != core.OpNone {
		t.Fatalf("shard 0 still holds a record: %+v", res)
	}
	if res := q.Resolve(0); res.Op != core.OpEnqueue || res.Arg != 2 {
		t.Fatalf("composition resolve = %+v, want prepared enqueue(2)", res)
	}
	q.ExecEnqueue(0)
	if got := drainAll(t, q, 0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("contents = %v, want [2] (abandoned value must not appear)", got)
	}
}

// TestAttachRecover: build, run detectable traffic, crash the whole
// system (drop volatile state), attach a fresh handle, recover in
// parallel, and check resolve + contents.
func TestAttachRecover(t *testing.T) {
	q, h := newTestQueue(t, 3, 2)
	for v := uint64(1); v <= 9; v++ {
		tid := int(v) % 2
		if err := q.PrepEnqueue(tid, v); err != nil {
			t.Fatal(err)
		}
		q.ExecEnqueue(tid)
	}
	// A prepared-but-unexecuted enqueue rides into the crash.
	if err := q.PrepEnqueue(0, 100); err != nil {
		t.Fatal(err)
	}

	// Whole-system crash: all dirty lines survive (KeepAll), volatile
	// companions are lost.
	h.ArmCrash(1)
	func() {
		defer func() { _ = recover() }()
		q.Enqueue(0, 999) // trips the armed crash on its first step
	}()
	if !h.Crashed() {
		t.Fatal("crash did not trigger")
	}
	h.Crash(pmem.KeepAll{})

	q2, err := Attach(h, 0)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if q2.Shards() != 3 || q2.Threads() != 2 {
		t.Fatalf("attached %d shards / %d threads, want 3/2", q2.Shards(), q2.Threads())
	}
	q2.Recover()

	res := q2.Resolve(0)
	if res.Op != core.OpEnqueue || res.Arg != 100 || res.Executed {
		t.Fatalf("resolve(0) = %+v, want unexecuted enqueue(100)", res)
	}
	// Complete the in-flight op, then check the multiset.
	q2.ExecEnqueue(0)
	got := drainAll(t, q2, 1)
	want := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

// TestRecoverClearsStaleNonRoutePreps: crash with an eager abandon still
// pending (stale X on a non-routed shard) must be cleaned deterministically
// by Recover.
func TestRecoverClearsStaleNonRoutePreps(t *testing.T) {
	q, h := newTestQueue(t, 2, 1)
	// Prep directly on shard 0 without going through the front-end, then
	// route to shard 1 via the front-end: simulates a crash that landed
	// between the cursor persist and the eager AbandonPrep.
	if err := q.Shard(0).PrepEnqueue(0, 50); err != nil {
		t.Fatal(err)
	}
	if err := q.PrepEnqueue(0, 51); err != nil { // dispatches to shard 0...
		t.Fatal(err)
	}
	// enqRR for tid 0 starts at 0, so that went to shard 0 and replaced
	// the orphan prep itself. Prepare once more to land on shard 1 and
	// leave shard 0's record stale.
	if err := q.PrepEnqueue(0, 52); err != nil {
		t.Fatal(err)
	}
	// Now shard 0's X was abandoned eagerly. Re-create the stale state
	// behind the front-end's back:
	if err := q.Shard(0).PrepEnqueue(0, 53); err != nil {
		t.Fatal(err)
	}

	h.ArmCrash(1)
	func() {
		defer func() { _ = recover() }()
		_ = q.Enqueue(0, 999)
	}()
	h.Crash(pmem.KeepAll{})

	q2, err := Attach(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	q2.Recover()
	if res := q2.Shard(0).Resolve(0); res.Op != core.OpNone {
		t.Fatalf("stale shard-0 record survived recovery: %+v", res)
	}
	if res := q2.Resolve(0); res.Op != core.OpEnqueue || res.Arg != 52 {
		t.Fatalf("route resolve = %+v, want enqueue(52)", res)
	}
}
