package sharded

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dss"
	"repro/internal/pmem"
)

var (
	insertOf = func(v uint64) dss.Op { return dss.Op{Kind: dss.Insert, Arg: v} }
	remove   = dss.Op{Kind: dss.Remove}
)

func newTestQueue(t *testing.T, shards, threads int) (*Front, *pmem.Heap) {
	t.Helper()
	h, err := pmem.New(pmem.Config{Words: 1 << 18, Mode: pmem.Tracked})
	if err != nil {
		t.Fatalf("pmem.New: %v", err)
	}
	q, err := New(h, 0, dss.QueueType, Config{Shards: shards, Threads: threads, NodesPerThread: 64, ExtraNodes: 16})
	if err != nil {
		t.Fatalf("sharded.New: %v", err)
	}
	return q, h
}

// coreShard unwraps shard i's adapter to the concrete DSS queue (for
// assertions on pool bookkeeping and shard-level records).
func coreShard(t *testing.T, q *Front, i int) *core.Queue {
	t.Helper()
	acc, ok := q.Shard(i).(interface{ Queue() *core.Queue })
	if !ok {
		t.Fatalf("shard %d is not a queue adapter: %T", i, q.Shard(i))
	}
	return acc.Queue()
}

// invoke runs a non-detectable operation on obj, failing the test on a
// transport-level error.
func invoke(t *testing.T, obj dss.Object, tid int, op dss.Op) (uint64, bool) {
	t.Helper()
	resp, err := obj.Invoke(tid, op)
	if err != nil {
		t.Fatalf("Invoke(%d, %v): %v", tid, op, err)
	}
	return resp.Val, resp.Kind == dss.Val
}

// drainAll empties the front non-detectably and returns the values sorted
// (global order across shards is relaxed, so only the multiset is stable).
func drainAll(t *testing.T, q *Front, tid int) []uint64 {
	t.Helper()
	var out []uint64
	for i := 0; i < 100_000; i++ {
		v, ok := invoke(t, q, tid, remove)
		if !ok {
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		out = append(out, v)
	}
	t.Fatal("drain did not terminate; queue corrupted?")
	return nil
}

func TestNewValidation(t *testing.T) {
	h, _ := pmem.New(pmem.Config{Words: 1 << 16, Mode: pmem.Tracked})
	if _, err := New(h, 0, dss.QueueType, Config{Shards: 0, Threads: 1, NodesPerThread: 4, ExtraNodes: 1}); err == nil {
		t.Fatal("accepted zero shards")
	}
	if _, err := New(h, 0, dss.QueueType, Config{Shards: 1, Threads: 0, NodesPerThread: 4, ExtraNodes: 1}); err == nil {
		t.Fatal("accepted zero threads")
	}
	if _, err := New(h, 0, dss.QueueType, Config{Shards: pmem.NumRoots, Threads: 1, NodesPerThread: 4, ExtraNodes: 1}); err == nil {
		t.Fatal("accepted shard count exceeding root slots")
	}
	// Multi-root-slot types stride their claims: too many cwe shards must
	// be rejected even when the same count of single-slot shards fits.
	if _, err := New(h, 0, dss.CWEFastType, Config{Shards: pmem.NumRoots / 2, Threads: 1, NodesPerThread: 4, ExtraNodes: 1}); err == nil {
		t.Fatal("accepted cwe shard count exceeding strided root slots")
	}
}

func TestNonDetectableRoundTrip(t *testing.T) {
	q, _ := newTestQueue(t, 4, 2)
	var want []uint64
	for v := uint64(1); v <= 20; v++ {
		if _, err := q.Invoke(0, insertOf(v)); err != nil {
			t.Fatalf("Invoke insert(%d): %v", v, err)
		}
		want = append(want, v)
	}
	got := drainAll(t, q, 1)
	if len(got) != len(want) {
		t.Fatalf("drained %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("multiset mismatch at %d: got %v", i, got)
		}
	}
}

// TestEnqueueSpreadsAcrossShards checks the round-robin dispatch: 4×k
// inserts from one thread must land k on each of 4 shards.
func TestEnqueueSpreadsAcrossShards(t *testing.T) {
	q, _ := newTestQueue(t, 4, 1)
	const perShard = 5
	for v := uint64(0); v < 4*perShard; v++ {
		if _, err := q.Invoke(0, insertOf(1000+v)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < q.Shards(); i++ {
		n := 0
		for {
			if _, ok := invoke(t, q.Shard(i), 0, remove); !ok {
				break
			}
			n++
		}
		if n != perShard {
			t.Fatalf("shard %d holds %d values, want %d", i, n, perShard)
		}
	}
}

// TestPerShardFIFO checks the semantic contract: per-shard order is FIFO
// even though global order is relaxed.
func TestPerShardFIFO(t *testing.T) {
	q, _ := newTestQueue(t, 3, 1)
	const rounds = 7
	for v := uint64(0); v < 3*rounds; v++ {
		if _, err := q.Invoke(0, insertOf(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Thread 0's insert cursor starts at 0%3 = 0, so value v lands on
	// shard v%3.
	for i := 0; i < 3; i++ {
		var got []uint64
		for {
			v, ok := invoke(t, q.Shard(i), 0, remove)
			if !ok {
				break
			}
			got = append(got, v)
		}
		if len(got) != rounds {
			t.Fatalf("shard %d: %d values, want %d", i, len(got), rounds)
		}
		for j := 1; j < len(got); j++ {
			if got[j] <= got[j-1] {
				t.Fatalf("shard %d: FIFO inversion %v", i, got)
			}
		}
	}
}

// TestPerShardLIFO is TestPerShardFIFO's mirror for the stack object: the
// same generic front, instantiated with dss.StackType, must give LIFO
// order per shard.
func TestPerShardLIFO(t *testing.T) {
	h, err := pmem.New(pmem.Config{Words: 1 << 18, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	q, err := New(h, 0, dss.StackType, Config{Shards: 3, Threads: 1, NodesPerThread: 64, ExtraNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 7
	for v := uint64(0); v < 3*rounds; v++ {
		if _, err := q.Invoke(0, insertOf(v)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		var got []uint64
		for {
			v, ok := invoke(t, q.Shard(i), 0, remove)
			if !ok {
				break
			}
			got = append(got, v)
		}
		if len(got) != rounds {
			t.Fatalf("shard %d: %d values, want %d", i, len(got), rounds)
		}
		for j := 1; j < len(got); j++ {
			if got[j] >= got[j-1] {
				t.Fatalf("shard %d: LIFO inversion %v", i, got)
			}
		}
	}
}

func TestDetectablePrepExecResolve(t *testing.T) {
	q, _ := newTestQueue(t, 2, 1)

	if err := q.Prep(0, insertOf(41)); err != nil {
		t.Fatal(err)
	}
	if op, resp, ok := q.Resolve(0); !ok || op.Kind != dss.Insert || resp.Kind != dss.NoResp {
		t.Fatalf("after prep: op %v resp %v ok %v", op, resp, ok)
	}
	if _, err := q.Exec(0); err != nil {
		t.Fatal(err)
	}
	if op, resp, ok := q.Resolve(0); !ok || op.Kind != dss.Insert || op.Arg != 41 || resp.Kind != dss.Ack {
		t.Fatalf("after exec: op %v resp %v ok %v", op, resp, ok)
	}

	if err := q.Prep(0, remove); err != nil {
		t.Fatal(err)
	}
	if op, resp, ok := q.Resolve(0); !ok || op.Kind != dss.Remove || resp.Kind != dss.NoResp {
		t.Fatalf("after remove prep: op %v resp %v ok %v", op, resp, ok)
	}
	resp, err := q.Exec(0)
	if err != nil || resp.Kind != dss.Val || resp.Val != 41 {
		t.Fatalf("Exec = (%v, %v), want Val 41", resp, err)
	}
	if op, resp, ok := q.Resolve(0); !ok || op.Kind != dss.Remove || resp.Kind != dss.Val || resp.Val != 41 {
		t.Fatalf("after remove exec: op %v resp %v ok %v", op, resp, ok)
	}
}

// TestDequeueScansPastEmptyShards: with the value sitting on a shard the
// remove cursor does not start at, the scan must find it, and EMPTY must
// be reported only on a fully empty front.
func TestDequeueScansPastEmptyShards(t *testing.T) {
	q, _ := newTestQueue(t, 4, 1)
	// The insert cursor starts at 0: the single value lands on shard 0.
	if err := q.Prep(0, insertOf(77)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Exec(0); err != nil {
		t.Fatal(err)
	}

	if err := q.Prep(0, remove); err != nil { // shard 0 — but force a wrap:
		t.Fatal(err)
	}
	// Move the prepared remove off the value's shard so the scan has to
	// walk past empty shards to find it.
	q.prepRemoveOn(0, 1)
	resp, err := q.Exec(0)
	if err != nil || resp.Kind != dss.Val || resp.Val != 77 {
		t.Fatalf("scan Exec = (%v, %v), want Val 77", resp, err)
	}

	if err := q.Prep(0, remove); err != nil {
		t.Fatal(err)
	}
	if resp, err := q.Exec(0); err != nil || resp.Kind != dss.Empty {
		t.Fatalf("remove on empty front = (%v, %v), want Empty", resp, err)
	}
	if op, resp, ok := q.Resolve(0); !ok || op.Kind != dss.Remove || resp.Kind != dss.Empty {
		t.Fatalf("resolve after empty remove: op %v resp %v ok %v", op, resp, ok)
	}
}

// TestStalePrepAbandoned: preparing on shard A then (after moving on)
// preparing on shard B must withdraw the unexecuted prep from A — its
// node returns to A's pool and A's X no longer reports an operation.
func TestStalePrepAbandoned(t *testing.T) {
	q, _ := newTestQueue(t, 2, 1)
	if err := q.Prep(0, insertOf(1)); err != nil { // shard 0
		t.Fatal(err)
	}
	free0 := coreShard(t, q, 0).FreeNodes()
	if err := q.Prep(0, insertOf(2)); err != nil { // shard 1; abandons shard 0's prep
		t.Fatal(err)
	}
	if got := coreShard(t, q, 0).FreeNodes(); got != free0+1 {
		t.Fatalf("shard 0 free nodes = %d, want %d (abandoned node returned)", got, free0+1)
	}
	if res := coreShard(t, q, 0).Resolve(0); res.Op != core.OpNone {
		t.Fatalf("shard 0 still holds a record: %+v", res)
	}
	if op, _, ok := q.Resolve(0); !ok || op.Kind != dss.Insert || op.Arg != 2 {
		t.Fatalf("composition resolve = %v ok %v, want prepared insert(2)", op, ok)
	}
	if _, err := q.Exec(0); err != nil {
		t.Fatal(err)
	}
	if got := drainAll(t, q, 0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("contents = %v, want [2] (abandoned value must not appear)", got)
	}
}

// TestFrontAbandonClearsRoute: the composition's own Abandon must clear
// the persisted route and the routed shard's record.
func TestFrontAbandonClearsRoute(t *testing.T) {
	q, _ := newTestQueue(t, 2, 1)
	if err := q.Prep(0, insertOf(9)); err != nil {
		t.Fatal(err)
	}
	if q.Route(0) < 0 {
		t.Fatal("prep left no route")
	}
	q.Abandon(0)
	if r := q.Route(0); r != -1 {
		t.Fatalf("route after Abandon = %d, want -1", r)
	}
	if _, _, ok := q.Resolve(0); ok {
		t.Fatal("Resolve still reports an operation after Abandon")
	}
	if got := drainAll(t, q, 0); len(got) != 0 {
		t.Fatalf("contents = %v, want empty (abandoned value must not appear)", got)
	}
}

// TestAttachRecover: build, run detectable traffic, crash the whole
// system (drop volatile state), attach a fresh handle, recover in
// parallel, and check resolve + contents.
func TestAttachRecover(t *testing.T) {
	q, h := newTestQueue(t, 3, 2)
	for v := uint64(1); v <= 9; v++ {
		tid := int(v) % 2
		if err := q.Prep(tid, insertOf(v)); err != nil {
			t.Fatal(err)
		}
		if _, err := q.Exec(tid); err != nil {
			t.Fatal(err)
		}
	}
	// A prepared-but-unexecuted insert rides into the crash.
	if err := q.Prep(0, insertOf(100)); err != nil {
		t.Fatal(err)
	}

	// Whole-system crash: all dirty lines survive (KeepAll), volatile
	// companions are lost.
	h.ArmCrash(1)
	func() {
		defer func() { _ = recover() }()
		_, _ = q.Invoke(0, insertOf(999)) // trips the armed crash on its first step
	}()
	if !h.Crashed() {
		t.Fatal("crash did not trigger")
	}
	h.Crash(pmem.KeepAll{})

	q2, err := Attach(h, 0, dss.QueueType)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if q2.Shards() != 3 || q2.Threads() != 2 {
		t.Fatalf("attached %d shards / %d threads, want 3/2", q2.Shards(), q2.Threads())
	}
	q2.Recover()

	op, resp, ok := q2.Resolve(0)
	if !ok || op.Kind != dss.Insert || op.Arg != 100 || resp.Kind != dss.NoResp {
		t.Fatalf("resolve(0) = %v %v ok %v, want unexecuted insert(100)", op, resp, ok)
	}
	// Complete the in-flight op, then check the multiset.
	if _, err := q2.Exec(0); err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, q2, 1)
	want := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

// TestAttachRejectsTypeMismatch: a front persisted over one object type
// must refuse to re-attach as another (the packed type code guards it),
// and types without an Attach hook must be refused outright.
func TestAttachRejectsTypeMismatch(t *testing.T) {
	h, err := pmem.New(pmem.Config{Words: 1 << 18, Mode: pmem.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(h, 0, dss.StackType, Config{Shards: 2, Threads: 1, NodesPerThread: 8, ExtraNodes: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(h, 0, dss.QueueType); err == nil {
		t.Fatal("Attach accepted a queue handle over a stack image")
	}
	if _, err := Attach(h, 0, dss.StackType); err == nil {
		t.Fatal("Attach accepted a type with no re-attachment support")
	}
}

// TestRecoverClearsStaleNonRoutePreps: crash with an eager abandon still
// pending (stale X on a non-routed shard) must be cleaned deterministically
// by Recover.
func TestRecoverClearsStaleNonRoutePreps(t *testing.T) {
	q, h := newTestQueue(t, 2, 1)
	// Prep directly on shard 0 without going through the front-end, then
	// route to shard 1 via the front-end: simulates a crash that landed
	// between the cursor persist and the eager Abandon.
	if err := q.Shard(0).Prep(0, insertOf(50)); err != nil {
		t.Fatal(err)
	}
	if err := q.Prep(0, insertOf(51)); err != nil { // dispatches to shard 0...
		t.Fatal(err)
	}
	// The insert cursor for tid 0 starts at 0, so that went to shard 0 and
	// replaced the orphan prep itself. Prepare once more to land on shard
	// 1 and leave shard 0's record stale.
	if err := q.Prep(0, insertOf(52)); err != nil {
		t.Fatal(err)
	}
	// Now shard 0's X was abandoned eagerly. Re-create the stale state
	// behind the front-end's back:
	if err := q.Shard(0).Prep(0, insertOf(53)); err != nil {
		t.Fatal(err)
	}

	h.ArmCrash(1)
	func() {
		defer func() { _ = recover() }()
		_, _ = q.Invoke(0, insertOf(999))
	}()
	h.Crash(pmem.KeepAll{})

	q2, err := Attach(h, 0, dss.QueueType)
	if err != nil {
		t.Fatal(err)
	}
	q2.Recover()
	if res := coreShard(t, q2, 0).Resolve(0); res.Op != core.OpNone {
		t.Fatalf("stale shard-0 record survived recovery: %+v", res)
	}
	if op, _, ok := q2.Resolve(0); !ok || op.Kind != dss.Insert || op.Arg != 52 {
		t.Fatalf("route resolve = %v ok %v, want insert(52)", op, ok)
	}
}
