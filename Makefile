GO ?= go

.PHONY: ci vet build test race bench-json clean

# ci is the full local gate: static checks, build, tests, and a short
# race pass over the packages with the most concurrency.
ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the data-race detector over the packages whose hot paths are
# exercised by many goroutines: the simulator, the DSS queue, the sharded
# front-end, the history checker, and the virtual-time scheduler.
race:
	$(GO) test -race -count=1 ./internal/pmem ./internal/core ./internal/sharded ./internal/check ./internal/vtime

# bench-json regenerates the committed benchmark-trajectory reports.
# Opt-in (not part of ci): the 5a/5b sweeps monopolize the machine for a
# few minutes and their numbers are host-dependent. The sharded report is
# measured in virtual time (internal/vtime) and is deterministic.
bench-json:
	$(GO) run ./cmd/dssbench -figure 5a -repeats 3 -flush 300ns -json BENCH_fig5a.json
	$(GO) run ./cmd/dssbench -figure 5b -repeats 3 -flush 300ns -json BENCH_fig5b.json
	$(GO) run ./cmd/dssbench -figure sharded -json BENCH_sharded.json

clean:
	$(GO) clean ./...
