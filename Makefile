GO ?= go

.PHONY: ci lint vet build test race soak soak-smoke bench-json clean

# ci is the full local gate: static checks, build, tests, a short race
# pass over the packages with the most concurrency, and the soak smoke.
ci: lint vet build test race soak-smoke

# lint fails if any file is not gofmt-clean. gofmt ships with the
# toolchain, so this adds no dependency.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the data-race detector over the packages whose hot paths are
# exercised by many goroutines: the simulator, the DSS queue, the sharded
# front-end, the history checker, and the virtual-time scheduler.
race:
	$(GO) test -race -count=1 ./internal/pmem ./internal/core ./internal/dss ./internal/sharded ./internal/check ./internal/vtime ./internal/mp

# soak regenerates the committed crash-storm soak report. The run is a
# deterministic discrete-event simulation: for a fixed seed the report is
# bit-identical on every machine, so BENCH_soak.json is committed and
# diffable. -repeat 3 additionally proves determinism on this host.
soak:
	$(GO) run ./cmd/dsssoak -seed 1 -repeat 3 -json BENCH_soak.json

# soak-smoke is the CI gate: rerun the committed configuration twice,
# fail on any exactly-once/queue-invariant violation, on a missed crash
# budget, on nondeterminism between the runs, or on drift from the
# committed BENCH_soak.json.
soak-smoke:
	$(GO) run ./cmd/dsssoak -seed 1 -repeat 2 -json /tmp/BENCH_soak.ci.json > /dev/null
	cmp BENCH_soak.json /tmp/BENCH_soak.ci.json

# bench-json regenerates the committed benchmark-trajectory reports.
# Opt-in (not part of ci): the 5a/5b sweeps monopolize the machine for a
# few minutes and their numbers are host-dependent. The sharded report is
# measured in virtual time (internal/vtime) and is deterministic.
bench-json:
	$(GO) run ./cmd/dssbench -figure 5a -repeats 3 -flush 300ns -json BENCH_fig5a.json
	$(GO) run ./cmd/dssbench -figure 5b -repeats 3 -flush 300ns -json BENCH_fig5b.json
	$(GO) run ./cmd/dssbench -figure sharded -json BENCH_sharded.json
	$(GO) run ./cmd/dssbench -figure sharded -object stack -json BENCH_sharded_stack.json

clean:
	$(GO) clean ./...
