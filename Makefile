GO ?= go

.PHONY: ci lint vet build test race soak soak-smoke metrics-smoke combine-smoke cluster-soak cluster-smoke procs procs-smoke register-smoke hmap-smoke slo-smoke live-smoke bench-json clean

# ci is the full local gate: static checks, build, tests, a short race
# pass over the packages with the most concurrency, and the nine smokes
# (deterministic soak report, deterministic instrumented metrics, the
# flat-combining fence-amortization figure, the multi-server cluster
# storm, the real multi-process kill-storm, the two keyed-object
# figures — the swap/CAS register and the key-hash-routed hash map —
# the streaming-SLO percentile figure, and the live telemetry plane).
ci: lint vet build test race soak-smoke metrics-smoke combine-smoke cluster-smoke procs-smoke register-smoke hmap-smoke slo-smoke live-smoke

# lint fails if any file is not gofmt-clean. gofmt ships with the
# toolchain, so this adds no dependency.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the data-race detector over the packages whose hot paths are
# exercised by many goroutines: the simulator, the DSS queue, the sharded
# front-end, the history checker, and the virtual-time scheduler.
race:
	$(GO) test -race -count=1 ./internal/pmem ./internal/core ./internal/dss ./internal/reg ./internal/hmap ./internal/sharded ./internal/combine ./internal/check ./internal/vtime ./internal/mp ./internal/obs ./internal/shm ./internal/livemon ./internal/procharness

# soak regenerates the committed crash-storm soak report and its merged
# recovery timeline. The run is a deterministic discrete-event
# simulation: for a fixed seed both files are bit-identical on every
# machine, so BENCH_soak.json and BENCH_soak_timeline.json are committed
# and diffable. -repeat 3 additionally proves determinism on this host.
soak:
	$(GO) run ./cmd/dsssoak -seed 1 -repeat 3 -json BENCH_soak.json -timeline BENCH_soak_timeline.json

# soak-smoke is the CI gate: rerun the committed configuration twice,
# fail on any exactly-once/queue-invariant violation, on a missed crash
# budget, on a timeline whose crash count disagrees with the report, on
# nondeterminism between the runs, or on drift from either committed file.
soak-smoke:
	$(GO) run ./cmd/dsssoak -seed 1 -repeat 2 -json /tmp/BENCH_soak.ci.json -timeline /tmp/BENCH_soak_timeline.ci.json > /dev/null
	cmp BENCH_soak.json /tmp/BENCH_soak.ci.json
	cmp BENCH_soak_timeline.json /tmp/BENCH_soak_timeline.ci.json

# metrics-smoke is the observability CI gate: regenerate the committed
# instrumented sharded-queue report (a deterministic virtual-time run),
# validate its internal consistency (and the committed timeline's) with
# dssmon -check, and fail on drift from the committed BENCH_metrics.json.
metrics-smoke:
	$(GO) run ./cmd/dssbench -figure sharded -metrics /tmp/BENCH_metrics.ci.json > /dev/null 2>&1
	$(GO) run ./cmd/dssmon -check /tmp/BENCH_metrics.ci.json BENCH_soak_timeline.json
	cmp BENCH_metrics.json /tmp/BENCH_metrics.ci.json

# combine-smoke is the fence-amortization CI gate: regenerate the
# committed flat-combining figure (a deterministic virtual-time sweep),
# fail on drift from BENCH_combine.json — which would silently move the
# flushes/op and fences/op numbers the guard tests pin — and run a short
# combined crash-storm soak (combine.Wire serving the RetryClients) that
# must be violation-free and deterministic.
combine-smoke:
	$(GO) run ./cmd/dssbench -figure combine -json /tmp/BENCH_combine.ci.json > /dev/null
	cmp BENCH_combine.json /tmp/BENCH_combine.ci.json
	$(GO) run ./cmd/dsssoak -seed 1 -combined -repeat 2 > /dev/null

# cluster-soak regenerates the committed multi-server cluster storm
# report and its per-server-lane recovery timeline: 4 shard-servers with
# independent overlapping crash schedules plus 2 scheduled cluster-wide
# blackouts, 8 cluster clients routing through persisted cursors. Like
# the single-server soak it is a deterministic DES, so both files are
# bit-identical on every machine and committed.
cluster-soak:
	$(GO) run ./cmd/dsssoak -cluster -seed 1 -repeat 3 -json BENCH_cluster_soak.json -timeline BENCH_cluster_timeline.json

# cluster-smoke is the cluster CI gate: rerun the committed configuration
# twice, fail on any conservation/order violation in the merged
# cluster-wide history, on a quiet storm (missed crash budget, unfired
# blackouts, or no crash landing inside another server's recovery
# window), on a timeline disagreeing with the report's overlap metrics,
# on nondeterminism, or on drift from either committed file; then
# validate the committed timeline's internal consistency with dssmon.
cluster-smoke:
	$(GO) run ./cmd/dsssoak -cluster -seed 1 -repeat 2 -json /tmp/BENCH_cluster_soak.ci.json -timeline /tmp/BENCH_cluster_timeline.ci.json > /dev/null
	cmp BENCH_cluster_soak.json /tmp/BENCH_cluster_soak.ci.json
	cmp BENCH_cluster_timeline.json /tmp/BENCH_cluster_timeline.ci.json
	$(GO) run ./cmd/dssmon -check BENCH_cluster_timeline.json

# procs regenerates the committed multi-process crash-storm report:
# REAL processes — 2 servers each owning an mmap'd heap file, 8 client
# processes over shared-memory rings — under a seeded SIGKILL schedule
# (32 kills: 4 landed inside recovery windows, 1 whole-cluster blackout,
# 2 hang injections killed by the heartbeat detector). The report holds
# only seed-derived counts, so it is byte-identical across repeats and
# machines; -repeat 3 proves it on this host.
procs:
	$(GO) run ./cmd/dssproc -seed 1 -repeat 3 -json BENCH_procs.json

# procs-smoke is the multi-process CI gate: rerun the committed
# configuration twice (byte-comparing the two runs), validate the report
# with dssmon -check, and fail on drift from the committed
# BENCH_procs.json. Skips cleanly on platforms without shared-memory
# segment support (dssproc -probe exits 3 there).
procs-smoke:
	@if $(GO) run ./cmd/dssproc -probe; then \
		$(GO) run ./cmd/dssproc -seed 1 -repeat 2 -json /tmp/BENCH_procs.ci.json > /dev/null && \
		$(GO) run ./cmd/dssmon -check /tmp/BENCH_procs.ci.json && \
		cmp BENCH_procs.json /tmp/BENCH_procs.ci.json; \
	else \
		echo "procs-smoke: skipped (no shared-memory segment support on this platform)"; \
	fi

# register-smoke is the keyed-register CI gate: regenerate the committed
# swap/CAS register figure (a deterministic virtual-time sweep of the
# bare detectable register vs the combining front), validate the figure's
# fence-amortization claim with dssmon -check, and fail on drift from
# the committed BENCH_register.json.
register-smoke:
	$(GO) run ./cmd/dssbench -figure register -json /tmp/BENCH_register.ci.json > /dev/null
	$(GO) run ./cmd/dssmon -check /tmp/BENCH_register.ci.json
	cmp BENCH_register.json /tmp/BENCH_register.ci.json

# hmap-smoke is the keyed hash-map CI gate: regenerate the committed
# hash-map figure (bare map plus 1/2/4/8 key-hash-routed shards in
# virtual time), validate the >2x 1-to-8-shard scaling claim with
# dssmon -check, and fail on drift from the committed BENCH_hmap.json.
hmap-smoke:
	$(GO) run ./cmd/dssbench -figure hmap -json /tmp/BENCH_hmap.ci.json > /dev/null
	$(GO) run ./cmd/dssmon -check /tmp/BENCH_hmap.ci.json
	cmp BENCH_hmap.json /tmp/BENCH_hmap.ci.json

# slo-smoke is the streaming-percentile CI gate: regenerate the
# committed dss-slo/1 figure (the observed deterministic crash-storm
# soak distilled into per-phase interpolated p50/p99/p999 and
# crash/recovery outage accounting), validate it with dssmon -check —
# which requires the exec-phase quantiles to be STRICTLY increasing,
# the property the log-linear interpolation exists to provide — and
# fail on drift from the committed BENCH_slo.json.
slo-smoke:
	$(GO) run ./cmd/dssbench -slo /tmp/BENCH_slo.ci.json > /dev/null
	$(GO) run ./cmd/dssmon -check /tmp/BENCH_slo.ci.json
	cmp BENCH_slo.json /tmp/BENCH_slo.ci.json

# live-smoke drives the live telemetry plane end to end: run a short
# real multi-process storm with a kept working directory, then attach
# dssmon's strictly read-only monitor to its shared-memory segments and
# require a rendered status table (live) and a self-validated
# Prometheus text exposition with phase histograms (serve -once). The
# racing attach — monitor sampling WHILE SIGKILLs land — is covered by
# TestStormLiveMonitor in internal/procharness, which `make race` runs.
# Skips cleanly where shared-memory segments are unsupported.
live-smoke:
	@if $(GO) run ./cmd/dssproc -probe; then \
		rm -rf /tmp/dss-live-smoke && \
		$(GO) run ./cmd/dssproc -seed 5 -servers 1 -clients 2 -ops 40 -kills 1 -rkills 0 -blackouts 0 -wedges 0 -dir /tmp/dss-live-smoke > /dev/null && \
		$(GO) run ./cmd/dssmon live -once /tmp/dss-live-smoke | grep -q "timeline" && \
		$(GO) run ./cmd/dssmon serve -once /tmp/dss-live-smoke | grep -q "dss_phase_duration_bucket"; \
	else \
		echo "live-smoke: skipped (no shared-memory segment support on this platform)"; \
	fi

# bench-json regenerates the committed benchmark-trajectory reports.
# Opt-in (not part of ci): the 5a/5b sweeps monopolize the machine for a
# few minutes and their numbers are host-dependent. The sharded report is
# measured in virtual time (internal/vtime) and is deterministic.
bench-json:
	$(GO) run ./cmd/dssbench -figure 5a -repeats 3 -flush 300ns -json BENCH_fig5a.json
	$(GO) run ./cmd/dssbench -figure 5b -repeats 3 -flush 300ns -json BENCH_fig5b.json
	$(GO) run ./cmd/dssbench -figure sharded -json BENCH_sharded.json -metrics BENCH_metrics.json
	$(GO) run ./cmd/dssbench -figure sharded -object stack -json BENCH_sharded_stack.json
	$(GO) run ./cmd/dssbench -figure combine -json BENCH_combine.json
	$(GO) run ./cmd/dssbench -figure register -json BENCH_register.json
	$(GO) run ./cmd/dssbench -figure hmap -json BENCH_hmap.json
	$(GO) run ./cmd/dssbench -slo BENCH_slo.json

clean:
	$(GO) clean ./...
