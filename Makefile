GO ?= go

.PHONY: ci vet build test race bench-json clean

# ci is the full local gate: static checks, build, tests, and a short
# race pass over the packages with the most concurrency.
ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the data-race detector over the simulator and the DSS queue,
# the two packages whose hot paths are exercised by many goroutines.
race:
	$(GO) test -race -count=1 ./internal/pmem ./internal/core

# bench-json regenerates the committed benchmark-trajectory reports.
# Opt-in (not part of ci): it monopolizes the machine for a few minutes
# and its numbers are host-dependent.
bench-json:
	$(GO) run ./cmd/dssbench -figure 5a -repeats 3 -flush 300ns -json BENCH_fig5a.json
	$(GO) run ./cmd/dssbench -figure 5b -repeats 3 -flush 300ns -json BENCH_fig5b.json

clean:
	$(GO) clean ./...
